/**
 * @file
 * Structure-of-arrays cell storage: one contiguous plane per cell
 * field instead of one struct per cell. The batched sense/program
 * kernels stream over the planes they need (a sense touches four of
 * nine fields; AoS drags the full 32-byte struct through the cache
 * for every read), and a 10^5-line array becomes nine allocations
 * instead of 10^5 per-line vectors.
 *
 * Lines view fixed-stride slices of an array-owned CellStorage; the
 * per-cell API survives as CellRef / CellConstRef — bundles of
 * references into the planes that read like the old `Cell &`. The
 * `Cell` value struct stays the unit of the physics (CellModel), of
 * snapshots, and of load/store round trips, so the refactor cannot
 * change a single computed bit.
 */

#ifndef PCMSCRUB_PCM_CELL_STORAGE_HH
#define PCMSCRUB_PCM_CELL_STORAGE_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "pcm/cell.hh"

namespace pcmscrub {

/**
 * Mutable view of one cell's fields inside a CellStorage. Reference
 * members write straight through to the planes; load()/store()
 * convert to and from the Cell value struct for code (the physics,
 * snapshots) that wants the whole cell at once.
 */
struct CellRef
{
    float &logR0;
    float &nu;
    float &nuSpeed;
    float &enduranceWrites;
    std::uint32_t &writes;
    std::uint8_t &storedLevel;
    std::uint8_t &stuck; //!< Boolean; one byte per cell in the plane.
    std::uint8_t &stuckLevel;
    Tick &writeTick;

    /** Copy the cell out of the planes. */
    Cell load() const
    {
        Cell cell;
        cell.logR0 = logR0;
        cell.nu = nu;
        cell.nuSpeed = nuSpeed;
        cell.enduranceWrites = enduranceWrites;
        cell.writes = writes;
        cell.storedLevel = storedLevel;
        cell.stuck = stuck != 0;
        cell.stuckLevel = stuckLevel;
        cell.writeTick = writeTick;
        return cell;
    }

    /** Write the cell back into the planes. */
    void store(const Cell &cell) const
    {
        logR0 = cell.logR0;
        nu = cell.nu;
        nuSpeed = cell.nuSpeed;
        enduranceWrites = cell.enduranceWrites;
        writes = cell.writes;
        storedLevel = cell.storedLevel;
        stuck = cell.stuck ? 1 : 0;
        stuckLevel = cell.stuckLevel;
        writeTick = cell.writeTick;
    }
};

/** Read-only counterpart of CellRef. */
struct CellConstRef
{
    const float &logR0;
    const float &nu;
    const float &nuSpeed;
    const float &enduranceWrites;
    const std::uint32_t &writes;
    const std::uint8_t &storedLevel;
    const std::uint8_t &stuck;
    const std::uint8_t &stuckLevel;
    const Tick &writeTick;

    Cell load() const
    {
        Cell cell;
        cell.logR0 = logR0;
        cell.nu = nu;
        cell.nuSpeed = nuSpeed;
        cell.enduranceWrites = enduranceWrites;
        cell.writes = writes;
        cell.storedLevel = storedLevel;
        cell.stuck = stuck != 0;
        cell.stuckLevel = stuckLevel;
        cell.writeTick = writeTick;
        return cell;
    }
};

/**
 * Raw plane pointers for a contiguous run of cells — what the
 * batched kernels iterate. Obtained from Line::span(); stays valid
 * until the underlying storage is resized.
 */
struct CellSpan
{
    float *logR0;
    float *nu;
    float *nuSpeed;
    float *enduranceWrites;
    std::uint32_t *writes;
    std::uint8_t *storedLevel;
    std::uint8_t *stuck;
    std::uint8_t *stuckLevel;
    Tick *writeTick;
    std::size_t count;

    CellRef ref(std::size_t i) const
    {
        return CellRef{logR0[i],       nu[i],         nuSpeed[i],
                       enduranceWrites[i], writes[i], storedLevel[i],
                       stuck[i],       stuckLevel[i], writeTick[i]};
    }
};

/** Read-only counterpart of CellSpan. */
struct CellConstSpan
{
    const float *logR0;
    const float *nu;
    const float *nuSpeed;
    const float *enduranceWrites;
    const std::uint32_t *writes;
    const std::uint8_t *storedLevel;
    const std::uint8_t *stuck;
    const std::uint8_t *stuckLevel;
    const Tick *writeTick;
    std::size_t count;

    CellConstRef ref(std::size_t i) const
    {
        return CellConstRef{logR0[i],       nu[i],         nuSpeed[i],
                            enduranceWrites[i], writes[i], storedLevel[i],
                            stuck[i],       stuckLevel[i], writeTick[i]};
    }
};

/**
 * The planes themselves: one vector per cell field, index = cell.
 * Default-constructed fields match the Cell struct's defaults.
 */
class CellStorage
{
  public:
    CellStorage() = default;
    explicit CellStorage(std::size_t cells) { resize(cells); }

    std::size_t size() const { return writeTick_.size(); }

    /** Grow or shrink; new cells get Cell-default field values. */
    void resize(std::size_t cells);

    /** Bytes held across all planes (capacity ignored). */
    std::size_t bytes() const;

    /** Copy cell `from` of `source` into cell `to` of this storage. */
    void copyCell(const CellStorage &source, std::size_t from,
                  std::size_t to);

    CellSpan span(std::size_t base, std::size_t count)
    {
        return CellSpan{logR0_.data() + base,
                        nu_.data() + base,
                        nuSpeed_.data() + base,
                        enduranceWrites_.data() + base,
                        writes_.data() + base,
                        storedLevel_.data() + base,
                        stuck_.data() + base,
                        stuckLevel_.data() + base,
                        writeTick_.data() + base,
                        count};
    }

    CellConstSpan span(std::size_t base, std::size_t count) const
    {
        return CellConstSpan{logR0_.data() + base,
                             nu_.data() + base,
                             nuSpeed_.data() + base,
                             enduranceWrites_.data() + base,
                             writes_.data() + base,
                             storedLevel_.data() + base,
                             stuck_.data() + base,
                             stuckLevel_.data() + base,
                             writeTick_.data() + base,
                             count};
    }

    CellRef ref(std::size_t i)
    {
        return CellRef{logR0_[i],       nu_[i],         nuSpeed_[i],
                       enduranceWrites_[i], writes_[i], storedLevel_[i],
                       stuck_[i],       stuckLevel_[i], writeTick_[i]};
    }

    CellConstRef ref(std::size_t i) const
    {
        return CellConstRef{logR0_[i],       nu_[i],         nuSpeed_[i],
                            enduranceWrites_[i], writes_[i],
                            storedLevel_[i], stuck_[i],      stuckLevel_[i],
                            writeTick_[i]};
    }

  private:
    std::vector<float> logR0_;
    std::vector<float> nu_;
    std::vector<float> nuSpeed_;
    std::vector<float> enduranceWrites_;
    std::vector<std::uint32_t> writes_;
    std::vector<std::uint8_t> storedLevel_;
    std::vector<std::uint8_t> stuck_;
    std::vector<std::uint8_t> stuckLevel_;
    std::vector<Tick> writeTick_;
};

} // namespace pcmscrub

#endif // PCMSCRUB_PCM_CELL_STORAGE_HH

/**
 * @file
 * Quantized encodings for the per-cell physics planes.
 *
 * The storage diet replaces the four f32 physics planes with two u8
 * planes plus a packed 2-bit level plane; this header documents and
 * implements the encodings. All decode paths go through small lookup
 * tables so the scalar and SIMD kernels read the *same* float for the
 * same code — quantization error is a property of the store, never of
 * the reader, which is what makes SIMD-vs-scalar bit-identity
 * provable.
 *
 * Encodings (precision contract; see DESIGN.md for the table):
 *
 *  - `logR0` (u8): biased delta from the stored level's mean,
 *    q = round((logR0 - levelMean[level]) / step) + 128 with
 *    step = 14 * sigmaLogR / 255, i.e. a +/-7 sigma window around the
 *    programmed mean at ~0.055 sigma resolution. Round-trip error is
 *    bounded by step/2 (plus one float rounding); draws beyond 7
 *    sigma (P ~ 2.6e-12 per write) clamp to the window edge.
 *
 *  - `nu` (u8): log-scale index. 0 encodes exactly nu = 0 (clamped
 *    non-positive draws); 255 is the stuck-cell sentinel (a stuck
 *    cell's nu is never sensed); 1..254 cover
 *    [nuMax/1600, nuMax] geometrically, so the relative round-trip
 *    error is bounded by exp(logStep/2) - 1 (~1.5% for the default
 *    device). nuMax is derived from the device config as the 7-sigma
 *    envelope of mu-jitter times the 7-sigma drift-speed factor.
 *    Sub-range values encode as index 1 (absolute error <= nuMin).
 *
 *  - `storedLevel`/`stuckLevel`/`stuck` fold into the packed 2-bit
 *    Gray plane plus the nu sentinel: the plane holds the Gray code
 *    of the level the cell physically sits at (the stuck level once
 *    frozen), so sensing needs no separate stuck/level planes. The
 *    one semantic merge: a stuck cell's storedLevel reads back as its
 *    stuckLevel (the pre-freeze target is not retained), and its
 *    logR0 decodes against the frozen level's mean — both values are
 *    unused by the physics of a stuck cell.
 *
 *  - `nuSpeed`/`enduranceWrites` are not stored at all in array
 *    (compact) storage: they are re-derived on demand from a
 *    counter-based manufacturing stream keyed by (seed, global cell
 *    index, line generation), so they are exact f32 values that cost
 *    zero resident bytes. Standalone/annex storage keeps explicit f32
 *    planes because its cells draw from a caller-supplied RNG.
 */

#ifndef PCMSCRUB_PCM_QUANT_HH
#define PCMSCRUB_PCM_QUANT_HH

#include <cstdint>

#include "pcm/device_config.hh"

namespace pcmscrub {

class Random;

/**
 * Derived quantization parameters plus decode LUTs for one device
 * config. Value type; an unconfigured spec asserts on use.
 */
class QuantSpec
{
  public:
    /** nu-plane sentinel marking a stuck cell. */
    static constexpr std::uint8_t kStuckNuIdx = 255;

    /** Bias of the logR0 delta code (code for "exactly the mean"). */
    static constexpr int kLogR0Bias = 128;

    QuantSpec() = default;

    /** Derive steps, bounds, and LUTs from the device physics. */
    void init(const DeviceConfig &config);

    bool initialized() const { return initialized_; }

    /** Decoded logR0 of code `q` for a cell at Gray code `gray`. */
    float decodeLogR0(unsigned gray, std::uint8_t q) const
    {
        return logR0Lut_[((gray & 3u) << 8) | q];
    }

    std::uint8_t encodeLogR0(unsigned gray, float value) const;

    /** Decoded drift exponent; index 0 -> exactly 0. */
    float decodeNu(std::uint8_t idx) const { return nuLut_[idx]; }

    std::uint8_t encodeNu(float value) const;

    /** Raw LUT bases for the SIMD gather paths. */
    const float *logR0LutData() const { return logR0Lut_; }
    const float *nuLutData() const { return nuLut_; }

    /** logR0 quantization step (log10 ohms per code). */
    double logR0Step() const { return logR0Step_; }

    /** Smallest nonzero representable nu. */
    double nuMin() const { return nuMin_; }

    /** Largest representable nu. */
    double nuMax() const { return nuMax_; }

    /** Geometric step of the nu code, ln units. */
    double nuLogStep() const { return nuLogStep_; }

    /**
     * Manufacturing draw for compact storage: mirrors
     * CellModel::initialize's draw order and formulas exactly
     * (endurance first, then drift speed), so a derived cell is
     * distributed identically to an initialize()d one.
     */
    void sampleManufacturing(Random &rng, float &endurance_writes,
                             float &nu_speed) const;

    /**
     * Log-domain manufacturing parameters, exposed so the batched
     * warm-up kernel can draw endurance/drift-speed z-scores and stay
     * in log space (deferring the exp until a cell actually needs the
     * linear value) while remaining draw-identical to
     * sampleManufacturing.
     */
    double enduranceLogMedian() const { return enduranceLogMedian_; }
    double enduranceSigmaLn() const { return enduranceSigmaLn_; }
    double driftSpeedSigmaLn() const { return driftSpeedSigmaLn_; }

    /** Reciprocal of nuLogStep(), the encodeNu scale factor. */
    double invNuLogStep() const { return invNuLogStep_; }

  private:
    double meanByGray_[4] = {};
    double logR0Step_ = 0.0;
    double nuMin_ = 0.0;
    double nuMax_ = 0.0;
    double nuLogStep_ = 0.0;
    double invNuLogStep_ = 0.0;
    double enduranceLogMedian_ = 0.0;
    double enduranceSigmaLn_ = 0.0;
    double driftSpeedSigmaLn_ = 0.0;
    bool initialized_ = false;
    float logR0Lut_[4 * 256] = {};
    float nuLut_[256] = {};
};

} // namespace pcmscrub

#endif // PCMSCRUB_PCM_QUANT_HH

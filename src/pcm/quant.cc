#include "pcm/quant.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"
#include "pcm/cell.hh"

namespace pcmscrub {

void
QuantSpec::init(const DeviceConfig &config)
{
    for (unsigned gray = 0; gray < 4; ++gray)
        meanByGray_[gray] = config.levelMeanLogR[grayToLevel(
            static_cast<std::uint8_t>(gray))];

    // +/-7 sigma window: beyond-window draws occur with probability
    // ~2.6e-12 per write — never at simulated scales — and clamp to
    // the edge. A degenerate sigma still needs a positive step so the
    // mean itself round-trips exactly through code 128.
    logR0Step_ = config.sigmaLogR > 0.0
        ? 14.0 * config.sigmaLogR / 255.0
        : 1e-6;
    for (unsigned gray = 0; gray < 4; ++gray) {
        for (unsigned q = 0; q < 256; ++q) {
            logR0Lut_[(gray << 8) | q] = static_cast<float>(
                meanByGray_[gray] +
                (static_cast<int>(q) - kLogR0Bias) * logR0Step_);
        }
    }

    // nu envelope: largest level mean plus 7 sigma of per-write
    // jitter, scaled by the 7-sigma drift-speed factor.
    double muMax = 0.0;
    for (unsigned level = 0; level < mlcLevels; ++level) {
        muMax = std::max(muMax,
                         config.driftMu[level] +
                             7.0 * config.driftSigma(level));
    }
    nuMax_ = std::max(1e-6,
                      muMax * std::exp(7.0 * config.driftSpeedSigmaLn));
    nuMin_ = nuMax_ / 1600.0;
    nuLogStep_ = std::log(nuMax_ / nuMin_) / 253.0;
    invNuLogStep_ = 1.0 / nuLogStep_;
    nuLut_[0] = 0.0f;
    for (unsigned idx = 1; idx <= 254; ++idx) {
        nuLut_[idx] = static_cast<float>(
            nuMin_ * std::exp((idx - 1) * nuLogStep_));
    }
    // The sentinel slot decodes as 0 so sensing a stuck cell's nu by
    // accident (SIMD lanes load it before masking) stays harmless.
    nuLut_[kStuckNuIdx] = 0.0f;

    enduranceLogMedian_ =
        std::log(config.enduranceMedian * config.enduranceScale);
    enduranceSigmaLn_ = config.enduranceSigmaLn;
    driftSpeedSigmaLn_ = config.driftSpeedSigmaLn;
    initialized_ = true;
}

std::uint8_t
QuantSpec::encodeLogR0(unsigned gray, float value) const
{
    PCMSCRUB_ASSERT(initialized_, "quant spec used before init");
    const double delta =
        static_cast<double>(value) - meanByGray_[gray & 3u];
    const long code =
        std::lround(delta / logR0Step_) + kLogR0Bias;
    return static_cast<std::uint8_t>(std::clamp(code, 0L, 255L));
}

std::uint8_t
QuantSpec::encodeNu(float value) const
{
    PCMSCRUB_ASSERT(initialized_, "quant spec used before init");
    if (!(value > 0.0f))
        return 0; // Exact zero (clamped draws land here).
    const double v = static_cast<double>(value);
    if (v >= nuMax_)
        return 254;
    if (v <= nuMin_)
        return 1;
    const long code =
        std::lround(std::log(v / nuMin_) * invNuLogStep_) + 1;
    return static_cast<std::uint8_t>(std::clamp(code, 1L, 254L));
}

void
QuantSpec::sampleManufacturing(Random &rng, float &endurance_writes,
                               float &nu_speed) const
{
    PCMSCRUB_ASSERT(initialized_, "quant spec used before init");
    // Keep in exact lockstep with CellModel::initialize: endurance
    // first, then drift speed, 1.0f shortcut for zero sigma. Both
    // sides draw from the ziggurat — manufacturing is evaluated per
    // cell on every compact-mode derive and during array warm-up, so
    // it is the one normal() consumer hot enough to care.
    endurance_writes = static_cast<float>(std::exp(
        enduranceLogMedian_ + enduranceSigmaLn_ * rng.normalZig()));
    nu_speed = driftSpeedSigmaLn_ == 0.0
        ? 1.0f
        : static_cast<float>(
              std::exp(driftSpeedSigmaLn_ * rng.normalZig()));
}

} // namespace pcmscrub

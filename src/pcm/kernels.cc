#include "pcm/kernels.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "pcm/kernels_impl.hh"
#include "pcm/kernels_simd.hh"

namespace pcmscrub {
namespace kernels {

using detail::DriftAgeCache;
using detail::senseLevel;

namespace {

/**
 * Whether the vector kernels may handle this span: MLC layout on a
 * uniform write clock (a materialized overlay means per-cell drift
 * clocks, which the scalar path resolves cell by cell), at least one
 * full vector of cells, and vectorization not disabled.
 */
inline bool
vectorPath(const CellConstSpan &cells, bool slc_mode)
{
    return !slc_mode && cells.ovTicks == nullptr && cells.count >= 8 &&
        simd::enabled() && simdk::available();
}

} // namespace

BitVector
senseCodeword(const CellConstSpan &cells, std::size_t codeword_bits,
              bool slc_mode, const DeviceConfig &config, Tick now,
              double threshold_shift)
{
    if (vectorPath(cells, slc_mode)) {
        return simdk::senseCodewordAvx2(cells, codeword_bits, config,
                                        now, threshold_shift);
    }
    BitVector word(codeword_bits);
    DriftAgeCache age(now, config.driftT0Seconds);
    std::uint64_t chunk = 0;
    unsigned filled = 0;
    std::size_t base = 0;
    if (slc_mode) {
        // Single wide threshold at the middle of the level range.
        for (std::size_t i = 0; i < codeword_bits; ++i) {
            const std::uint64_t bit =
                senseLevel(cells, i, config, age, threshold_shift) >=
                mlcLevels / 2;
            chunk |= bit << filled;
            if (++filled == 64) {
                word.deposit(base, 64, chunk);
                base += 64;
                chunk = 0;
                filled = 0;
            }
        }
    } else {
        for (std::size_t i = 0; i < cells.count; ++i) {
            const std::uint64_t gray = levelToGray(
                senseLevel(cells, i, config, age, threshold_shift));
            chunk |= gray << filled;
            filled += bitsPerCell;
            if (filled == 64) {
                // The flush clamps for odd-width codewords whose
                // last cell pushes the final chunk past the end.
                const std::size_t n = codeword_bits - base < 64
                    ? codeword_bits - base : 64;
                word.deposit(base, n, chunk);
                base += 64;
                chunk = 0;
                filled = 0;
            }
        }
    }
    // Tail chunk; the last cell of an odd-width codeword contributes
    // one bit more than the word holds, which deposit() masks off.
    if (base < codeword_bits)
        word.deposit(base, codeword_bits - base, chunk);
    return word;
}

unsigned
marginScanCount(const CellConstSpan &cells, const DeviceConfig &config,
                Tick now)
{
    if (vectorPath(cells, /*slc_mode=*/false))
        return simdk::marginScanCountAvx2(cells, config, now);
    DriftAgeCache age(now, config.driftT0Seconds);
    unsigned flagged = 0;
    for (std::size_t i = 0; i < cells.count; ++i)
        flagged += detail::marginFlagged(cells, i, config, age);
    return flagged;
}

LineProgramStats
programCodeword(const CellSpan &cells, const BitVector &codeword,
                std::size_t codeword_bits, bool slc_mode, Tick now,
                const CellModel &model, Random &rng, bool differential)
{
    const DeviceConfig &config = model.config();
    CellStorage &storage = *cells.storage;
    DriftAgeCache age(now, config.driftT0Seconds);

    // A clean full write leaves every live cell on the line's new
    // uniform write clock, so per-cell writes/ticks stay virtual.
    // Anything that lets a cell diverge — skipped cells of a
    // differential write, a stuck cell's frozen clock, or pre-existing
    // skew — needs the overlay materialized *before* the loop, so it
    // captures the current uniform values for untouched cells.
    WriteOverlay *overlay = nullptr;
    if (storage.hasOverlay(cells.line) || differential ||
        storage.lineHasStuck(cells.line, cells.count)) {
        overlay = &storage.ensureOverlay(cells.line);
    }
    const CellConstSpan view = cells.view();

    LineProgramStats stats;
    for (std::size_t i = 0; i < cells.count; ++i) {
        unsigned level;
        if (slc_mode) {
            // One bit per cell, extreme levels only: full RESET for
            // 0, full SET for 1.
            level = codeword.get(i) ? mlcLevels - 1 : 0;
        } else {
            const std::size_t bit = i * bitsPerCell;
            std::uint8_t gray = codeword.get(bit) ? 1 : 0;
            if (bit + 1 < codeword_bits && codeword.get(bit + 1))
                gray |= 2;
            level = grayToLevel(gray);
        }
        if (view.stuck(i)) {
            // Dead cells ignore programming (and the differential
            // read) — CellModel::program draws nothing for them.
            continue;
        }
        if (differential &&
            senseLevel(view, i, config, age, 0.0) == level) {
            continue; // Data-comparison write skips matching cells.
        }
        Cell cell = storage.loadCell(cells.baseCell + i);
        const ProgramOutcome outcome =
            model.program(cell, level, now, rng);
        storage.storePhysics(cells.baseCell + i, cell);
        if (overlay != nullptr) {
            overlay->writes[i] = cell.writes;
            overlay->ticks[i] = cell.writeTick;
        }
        if (outcome.iterations > 0) {
            ++stats.cellsProgrammed;
            stats.totalIterations += outcome.iterations;
        }
        stats.cellsWornOut += outcome.wornOut;
    }
    return stats;
}

} // namespace kernels
} // namespace pcmscrub

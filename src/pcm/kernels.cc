#include "pcm/kernels.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/simd.hh"
#include "pcm/kernels_impl.hh"
#include "pcm/kernels_simd.hh"

namespace pcmscrub {
namespace kernels {

using detail::DriftAgeCache;
using detail::senseLevel;

namespace {

/**
 * Whether the vector kernels may handle this span: MLC layout on a
 * uniform write clock (a materialized overlay means per-cell drift
 * clocks, which the scalar path resolves cell by cell), at least one
 * full vector of cells, and vectorization not disabled.
 */
inline bool
vectorPath(const CellConstSpan &cells, bool slc_mode)
{
    return !slc_mode && cells.ovTicks == nullptr && cells.count >= 8 &&
        simd::enabled() && simdk::available();
}

/**
 * Draw/transform scratch of the two-stage program pipelines.
 * Thread-local: parallel backends program disjoint lines from
 * worker threads, each of which keeps its own buffers warm.
 */
detail::ProgramScratch &
programScratch()
{
    static thread_local detail::ProgramScratch scratch;
    return scratch;
}

/**
 * Batched rewrite of a full array-home MLC line: stage A decodes
 * target levels and consumes the line stream in the scalar loop's
 * exact draw order into scratch, stage B (programTransformAvx2)
 * turns the draws into plane bytes eight cells at a step. Emits the
 * bits, stats, and overlay words of the scalar loop exactly; the
 * caller has already materialized the overlay if the line needs one
 * and verified the vector gate.
 */
LineProgramStats
programCodewordBatched(const CellSpan &cells, const BitVector &codeword,
                       Tick now, const CellModel &model, Random &rng,
                       WriteOverlay *overlay)
{
    const DeviceConfig &config = model.config();
    CellStorage &storage = *cells.storage;
    const QuantSpec &spec = storage.spec();
    const std::size_t count = cells.count;
    detail::ProgramScratch &scr = programScratch();
    scr.level.resize(count);
    scr.alive.resize(count);
    scr.dIter.resize(count);
    scr.dLogR.resize(count);
    scr.dNu.resize(count);

    // Stage A: decode target levels (2-bit Gray symbols pack 32 to
    // the codeword word; the BitVector keeps tail bits clear, so an
    // odd-width codeword's half-cell lands as bit1 = 0 exactly like
    // the bit-by-bit guard) and consume the line stream in the
    // scalar order — per live cell the iteration draw (intermediate
    // levels only), then logR0, then nu. Stuck cells draw nothing.
    const std::uint64_t *words = codeword.words().data();
    const CellConstSpan view = cells.view();
    bool anyStuck = false;
    for (std::size_t i = 0; i < count; ++i) {
        const unsigned g = static_cast<unsigned>(
            (words[i >> 5] >> ((i & 31u) * 2u)) & 3u);
        const unsigned level =
            grayToLevel(static_cast<std::uint8_t>(g));
        scr.level[i] = static_cast<std::uint8_t>(level);
        if (view.stuck(i)) {
            scr.alive[i] = 0;
            anyStuck = true;
            continue;
        }
        scr.alive[i] = 1;
        if (level != 0 && level != mlcLevels - 1) {
            scr.dIter[i] = config.meanIterationsIntermediate +
                config.sigmaIterations * rng.normalZig();
        }
        scr.dLogR[i] = config.levelMeanLogR[level] +
            config.sigmaLogR * rng.normalZig();
        scr.dNu[i] = config.driftMu[level] +
            config.driftSigma(level) * rng.normalZig();
    }

    // Gray plane: cell c's symbol is codeword bits 2c..2c+1, four
    // cells to the byte — the plane's own layout — so live symbols
    // deposit wholesale. Stuck cells keep their frozen symbol (the
    // scalar path never stores them); bits past the last cell are
    // clear in the codeword and already clear in the plane (warm-up
    // deposited the same clear tail), so wholesale stays identical.
    std::uint8_t *gray = storage.grayData(cells.line);
    const std::size_t planeBytes = (count + 3) / 4;
    if (anyStuck) {
        for (std::size_t k = 0; k < planeBytes; ++k) {
            const std::size_t base = k * 4;
            const std::size_t n =
                count - base < 4 ? count - base : 4;
            std::uint8_t keep = 0;
            for (std::size_t c = 0; c < n; ++c) {
                if (!scr.alive[base + c])
                    keep |= static_cast<std::uint8_t>(3u << (c * 2));
            }
            const std::uint8_t tgt = static_cast<std::uint8_t>(
                words[k >> 3] >> ((k & 7u) * 8u));
            gray[k] = static_cast<std::uint8_t>(
                (gray[k] & keep) | (tgt & ~keep));
        }
    } else {
        for (std::size_t k = 0; k < planeBytes; ++k) {
            gray[k] = static_cast<std::uint8_t>(
                words[k >> 3] >> ((k & 7u) * 8u));
        }
    }

    // Manufacturing floats: stored planes in aux mode, else the
    // batched derive (per-cell streams, order-neutral; values are
    // deriveManufacturing's exactly).
    const float *nuSpeedF;
    const float *enduranceF;
    if (storage.auxMode()) {
        nuSpeedF = storage.rawNuSpeedData(cells.line);
        enduranceF = storage.rawEnduranceData(cells.line);
    } else {
        scr.nuSpeedF.resize(count);
        scr.enduranceF.resize(count);
        simdk::manufDeriveAvx2(
            storage.manufSeed(),
            storage.manufStreamId(cells.baseCell, cells.line), count,
            spec.enduranceLogMedian(), spec.enduranceSigmaLn(),
            spec.driftSpeedSigmaLn(), scr.enduranceF.data(),
            scr.nuSpeedF.data());
        nuSpeedF = scr.nuSpeedF.data();
        enduranceF = scr.enduranceF.data();
    }

    detail::ProgramTransformArgs args;
    args.logRq = storage.rawLogRqData(cells.line);
    args.nuIdx = storage.rawNuIdxData(cells.line);
    args.level = scr.level.data();
    args.alive = scr.alive.data();
    args.dIter = scr.dIter.data();
    args.dLogR = scr.dLogR.data();
    args.dNu = scr.dNu.data();
    args.nuSpeedF = nuSpeedF;
    args.enduranceF = enduranceF;
    args.ovWrites =
        overlay != nullptr ? overlay->writes.data() : nullptr;
    args.ovTicks =
        overlay != nullptr ? overlay->ticks.data() : nullptr;
    args.count = count;
    args.now = now;
    args.uniformWrites =
        static_cast<std::uint32_t>(storage.lineWrites(cells.line));
    args.maxIterations =
        static_cast<double>(config.maxProgramIterations);
    for (unsigned l = 0; l < mlcLevels; ++l)
        args.meanLogR[l] = config.levelMeanLogR[l];
    args.logR0Step = spec.logR0Step();
    args.nuMin = spec.nuMin();
    args.nuMax = spec.nuMax();
    args.invNuLogStep = spec.invNuLogStep();

    LineProgramStats stats;
    simdk::programTransformAvx2(args, stats);
    return stats;
}

} // namespace

BitVector
senseCodeword(const CellConstSpan &cells, std::size_t codeword_bits,
              bool slc_mode, const DeviceConfig &config, Tick now,
              double threshold_shift)
{
    if (vectorPath(cells, slc_mode)) {
        return simdk::senseCodewordAvx2(cells, codeword_bits, config,
                                        now, threshold_shift);
    }
    BitVector word(codeword_bits);
    DriftAgeCache age(now, config.driftT0Seconds);
    std::uint64_t chunk = 0;
    unsigned filled = 0;
    std::size_t base = 0;
    if (slc_mode) {
        // Single wide threshold at the middle of the level range.
        for (std::size_t i = 0; i < codeword_bits; ++i) {
            const std::uint64_t bit =
                senseLevel(cells, i, config, age, threshold_shift) >=
                mlcLevels / 2;
            chunk |= bit << filled;
            if (++filled == 64) {
                word.deposit(base, 64, chunk);
                base += 64;
                chunk = 0;
                filled = 0;
            }
        }
    } else {
        for (std::size_t i = 0; i < cells.count; ++i) {
            const std::uint64_t gray = levelToGray(
                senseLevel(cells, i, config, age, threshold_shift));
            chunk |= gray << filled;
            filled += bitsPerCell;
            if (filled == 64) {
                // The flush clamps for odd-width codewords whose
                // last cell pushes the final chunk past the end.
                const std::size_t n = codeword_bits - base < 64
                    ? codeword_bits - base : 64;
                word.deposit(base, n, chunk);
                base += 64;
                chunk = 0;
                filled = 0;
            }
        }
    }
    // Tail chunk; the last cell of an odd-width codeword contributes
    // one bit more than the word holds, which deposit() masks off.
    if (base < codeword_bits)
        word.deposit(base, codeword_bits - base, chunk);
    return word;
}

unsigned
marginScanCount(const CellConstSpan &cells, const DeviceConfig &config,
                Tick now)
{
    if (vectorPath(cells, /*slc_mode=*/false))
        return simdk::marginScanCountAvx2(cells, config, now);
    DriftAgeCache age(now, config.driftT0Seconds);
    unsigned flagged = 0;
    for (std::size_t i = 0; i < cells.count; ++i)
        flagged += detail::marginFlagged(cells, i, config, age);
    return flagged;
}

LineProgramStats
programCodeword(const CellSpan &cells, const BitVector &codeword,
                std::size_t codeword_bits, bool slc_mode, Tick now,
                const CellModel &model, Random &rng, bool differential)
{
    const DeviceConfig &config = model.config();
    CellStorage &storage = *cells.storage;
    DriftAgeCache age(now, config.driftT0Seconds);

    // A clean full write leaves every live cell on the line's new
    // uniform write clock, so per-cell writes/ticks stay virtual.
    // Anything that lets a cell diverge — skipped cells of a
    // differential write, a stuck cell's frozen clock, or pre-existing
    // skew — needs the overlay materialized *before* the loop, so it
    // captures the current uniform values for untouched cells.
    WriteOverlay *overlay = nullptr;
    if (storage.hasOverlay(cells.line) || differential ||
        storage.lineHasStuck(cells.line, cells.count)) {
        overlay = &storage.ensureOverlay(cells.line);
    }

    // Batched pipeline for the common shape: a full array-home MLC
    // line, no data-comparison reads. Unlike the sense-path gate it
    // admits overlays (stage B stores per-cell clocks through the
    // overlay pointers); differential writes stay scalar because
    // their skip-sense decides per cell whether the stream is drawn
    // at all.
    if (!slc_mode && !differential && cells.count >= 8 &&
        simd::enabled() && simdk::available() &&
        cells.baseCell == cells.line * storage.cellsPerLine() &&
        cells.count == storage.cellsPerLine() &&
        codeword.size() == codeword_bits &&
        cells.count ==
            (codeword_bits + bitsPerCell - 1) / bitsPerCell) {
        return programCodewordBatched(cells, codeword, now, model,
                                      rng, overlay);
    }
    const CellConstSpan view = cells.view();

    LineProgramStats stats;
    for (std::size_t i = 0; i < cells.count; ++i) {
        unsigned level;
        if (slc_mode) {
            // One bit per cell, extreme levels only: full RESET for
            // 0, full SET for 1.
            level = codeword.get(i) ? mlcLevels - 1 : 0;
        } else {
            const std::size_t bit = i * bitsPerCell;
            std::uint8_t gray = codeword.get(bit) ? 1 : 0;
            if (bit + 1 < codeword_bits && codeword.get(bit + 1))
                gray |= 2;
            level = grayToLevel(gray);
        }
        if (view.stuck(i)) {
            // Dead cells ignore programming (and the differential
            // read) — CellModel::program draws nothing for them.
            continue;
        }
        if (differential &&
            senseLevel(view, i, config, age, 0.0) == level) {
            continue; // Data-comparison write skips matching cells.
        }
        Cell cell = storage.loadCell(cells.baseCell + i);
        const ProgramOutcome outcome =
            model.program(cell, level, now, rng);
        storage.storePhysics(cells.baseCell + i, cell);
        if (overlay != nullptr) {
            overlay->writes[i] = cell.writes;
            overlay->ticks[i] = cell.writeTick;
        }
        if (outcome.iterations > 0) {
            ++stats.cellsProgrammed;
            stats.totalIterations += outcome.iterations;
        }
        stats.cellsWornOut += outcome.wornOut;
    }
    return stats;
}

void
warmProgramCodeword(const CellSpan &cells, const BitVector &codeword,
                    std::size_t codeword_bits,
                    const DeviceConfig &config, Random &rng)
{
    CellStorage &storage = *cells.storage;
    const QuantSpec &spec = storage.spec();
    PCMSCRUB_ASSERT(cells.baseCell ==
                        cells.line * storage.cellsPerLine() &&
                        cells.count == storage.cellsPerLine(),
                    "warm-up kernel needs the full array-home line");
    PCMSCRUB_ASSERT(codeword.size() == codeword_bits &&
                        cells.count ==
                            (codeword_bits + bitsPerCell - 1) /
                                bitsPerCell,
                    "codeword of %zu bits on a %zu-cell line",
                    codeword_bits, cells.count);

    // Gray plane: cell c's Gray code is codeword bits 2c..2c+1, four
    // cells to the byte — exactly the plane's own layout, and a
    // BitVector keeps its tail bits clear, so an odd-width codeword's
    // last half-cell lands as bit1 = 0 just like targetLevel's guard.
    // Deposit the codeword bytes wholesale.
    std::uint8_t *gray = storage.grayData(cells.line);
    const std::uint64_t *words = codeword.words().data();
    const std::size_t planeBytes = (cells.count + 3) / 4;
    for (std::size_t k = 0; k < planeBytes; ++k) {
        gray[k] = static_cast<std::uint8_t>(
            words[k >> 3] >> ((k & 7u) * 8u));
    }

    std::uint8_t *logRq = storage.rawLogRqData(cells.line);
    std::uint8_t *nuIdx = storage.rawNuIdxData(cells.line);

    const double logRScale = config.sigmaLogR / spec.logR0Step();
    const double lnNuMin = std::log(spec.nuMin());
    const double lnNuMax = std::log(spec.nuMax());
    const double invNuLogStep = spec.invNuLogStep();
    const double logMedianE = spec.enduranceLogMedian();
    const double sigmaE = spec.enduranceSigmaLn();
    const double sigmaS = spec.driftSpeedSigmaLn();
    const std::uint64_t manufSeed = storage.manufSeed();
    double driftMu[mlcLevels], driftSig[mlcLevels];
    for (unsigned l = 0; l < mlcLevels; ++l) {
        driftMu[l] = config.driftMu[l];
        driftSig[l] = config.driftSigma(l);
    }
    const std::size_t count = cells.count;
    detail::ProgramScratch &scr = programScratch();
    scr.z1.resize(count);
    scr.z2.resize(count);
    scr.zE.resize(count);
    if (sigmaS != 0.0)
        scr.zS.resize(count);
    double *zS = sigmaS == 0.0 ? nullptr : scr.zS.data();

    // Stage A, line stream: always both z-scores per cell — one for
    // logR0, one for this write's drift exponent — in the scalar
    // order (z1 then z2, cell by cell).
    for (std::size_t i = 0; i < count; ++i) {
        scr.z1[i] = rng.normalZig();
        scr.z2[i] = rng.normalZig();
    }

    // Stage A, manufacturing streams: consumed draw-for-draw like
    // sampleManufacturing (endurance first; no drift-speed draw when
    // its sigma is zero). Each cell owns its stream, so batching the
    // draws is order-neutral.
    const std::uint64_t sidBase =
        storage.manufStreamId(cells.baseCell, cells.line);
    const bool vec =
        count >= 8 && simd::enabled() && simdk::available();
    if (vec) {
        simdk::manufZScoresAvx2(manufSeed, sidBase, count,
                                scr.zE.data(), zS);
    } else {
        std::uint64_t sid = sidBase;
        for (std::size_t i = 0; i < count; ++i, sid += 256) {
            Random manuf = Random::stream(manufSeed, sid);
            scr.zE[i] = manuf.normalZig();
            if (zS != nullptr)
                zS[i] = manuf.normalZig();
        }
    }

    // Stage B: pure transform of the draw buffers into plane bytes.
    detail::WarmTransformArgs args;
    args.gray = gray;
    args.logRq = logRq;
    args.nuIdx = nuIdx;
    args.z1 = scr.z1.data();
    args.z2 = scr.z2.data();
    args.zE = scr.zE.data();
    args.zS = zS;
    args.count = count;
    args.logRScale = logRScale;
    args.lnNuMin = lnNuMin;
    args.lnNuMax = lnNuMax;
    args.invNuLogStep = invNuLogStep;
    args.logMedianE = logMedianE;
    args.sigmaE = sigmaE;
    args.sigmaS = sigmaS;
    for (unsigned l = 0; l < mlcLevels; ++l) {
        args.driftMu[l] = driftMu[l];
        args.driftSig[l] = driftSig[l];
    }
    if (vec) {
        simdk::warmTransformAvx2(args);
    } else {
        for (std::size_t i = 0; i < count; ++i)
            detail::warmTransformCell(args, i);
    }
}

void
DriftCrossLut::init(const DeviceConfig &config, const QuantSpec &spec)
{
    PCMSCRUB_ASSERT(spec.initialized(),
                    "band-crossing LUT needs an initialized spec");
    crossDelta_.assign(4 * 256 * 256, -1.0);
    verifiedDelta_.assign(4 * 256 * 256, 0);
    writeGray_.assign(4 * 256, 0);
    const double t0 = config.driftT0Seconds;
    for (unsigned g = 0; g < 4; ++g) {
        for (unsigned q = 0; q < 256; ++q) {
            const double logR0 =
                static_cast<double>(spec.decodeLogR0(
                    g, static_cast<std::uint8_t>(q)));
            // Write-time sense (age 0): drift contributes nu * 0.0,
            // which never changes a threshold compare, so the level
            // is pure in the decoded logR0 — CellModel::read at the
            // cell's own write tick.
            unsigned level0 = 0;
            for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
                if (logR0 > config.readThresholdLogR[l])
                    level0 = l + 1;
            }
            writeGray_[(g << 8) | q] = static_cast<std::int32_t>(
                levelToGray(static_cast<std::uint8_t>(level0)));
            const bool upper = config.hasUpperThreshold(level0);
            for (unsigned nuIdx = 0; nuIdx < 256; ++nuIdx) {
                if (nuIdx == QuantSpec::kStuckNuIdx)
                    continue; // Sentinel entries are never read.
                const std::size_t k = index(g, q, nuIdx);
                const double nu = static_cast<double>(
                    spec.decodeNu(
                        static_cast<std::uint8_t>(nuIdx)));
                if (nu < 0.0)
                    continue; // Reverse drift: claim nothing
                              // (unreachable: decodes are >= 0).
                if (!upper || nu == 0.0) {
                    // Top band or no drift: never crosses, for any
                    // write tick.
                    crossDelta_[k] =
                        std::numeric_limits<double>::infinity();
                    continue;
                }
                const double headroom =
                    config.readThresholdLogR[level0] - logR0;
                if (headroom < 0.0)
                    continue; // Claim nothing (unreachable: read
                              // chose level0, so logR0 is at or
                              // under its threshold).
                const double uCross = headroom / nu;
                const double ageSeconds =
                    t0 * std::pow(10.0, uCross);
                const double deltaTicks = ageSeconds *
                    static_cast<double>(ticksPerSecond);
                if (std::isnan(deltaTicks))
                    continue; // The model's NaN guard.
                crossDelta_[k] = deltaTicks;
                if (deltaTicks >= static_cast<double>(kNeverTick))
                    continue; // Never for every write tick; the
                              // verified delta stays unused.
                // The model's conversion slack and monotone
                // walk-down, at write tick 0: the walk's verifying
                // reads depend only on the candidate's delta, so
                // the result shifts exactly with the write tick.
                Tick delta = static_cast<Tick>(deltaTicks);
                const Tick slack = 2 + (delta >> 45);
                delta = delta > slack ? delta - slack : 0;
                Tick candidate = delta;
                while (candidate > 0) {
                    const double age = ticksToSeconds(candidate);
                    double u = 0.0;
                    if (age > t0)
                        u = std::log10(age / t0);
                    const double logR = logR0 + nu * u;
                    unsigned level = 0;
                    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
                        if (logR > config.readThresholdLogR[l])
                            level = l + 1;
                    }
                    if (level == level0)
                        break;
                    const Tick gap = candidate;
                    candidate -= gap / 16 + 1;
                }
                verifiedDelta_[k] = candidate;
            }
        }
    }
    initialized_ = true;
}

LazyLineResult
computeLazyLine(const CellConstSpan &cells,
                const std::uint64_t *intended, Tick line_write_tick,
                const DeviceConfig &config, const DriftCrossLut &lut)
{
    PCMSCRUB_ASSERT(lut.initialized(),
                    "lazy kernel before the LUT is built");
    // The vector path's 64-bit min runs signed; crossings it keeps
    // in lanes are bounded by 2^61 + the write tick, so any
    // realistic tick qualifies.
    if (vectorPath(cells, /*slc_mode=*/false) &&
        line_write_tick < (Tick(1) << 61)) {
        return simdk::computeLazyLineAvx2(cells, intended,
                                          line_write_tick, config,
                                          lut);
    }
    LazyLineResult out;
    Tick until = kNeverTick;
    if (!detail::lazyScanScalar(cells, intended, line_write_tick,
                                config, lut, 0, until))
        return out;
    if (until < line_write_tick)
        return out;
    out.eligible = true;
    out.cleanUntil = until;
    return out;
}

void
computeLazyLines(const CellStorage &storage, std::size_t first_line,
                 std::size_t line_count, const DeviceConfig &config,
                 const DriftCrossLut &lut, LazyLineResult *out)
{
    const std::size_t cellsPerLine = storage.cellsPerLine();
    for (std::size_t k = 0; k < line_count; ++k) {
        const std::size_t line = first_line + k;
        out[k] = computeLazyLine(
            storage.constSpan(line, cellsPerLine),
            storage.intendedWords(line),
            storage.lineLastWriteTick(line), config, lut);
    }
}

LazyLineResult
computeLazyLineModel(const CellStorage &storage, std::size_t line,
                     const CellModel &model)
{
    LazyLineResult out;
    const Tick writeTick = storage.lineLastWriteTick(line);
    const std::uint64_t *words = storage.intendedWords(line);
    const std::size_t base = line * storage.cellsPerLine();
    const std::size_t count = storage.cellsPerLine();
    Tick until = kNeverTick;
    for (std::size_t i = 0; i < count; ++i) {
        const Cell cell = storage.loadPhysics(base + i);
        if (cell.stuck)
            return out;
        const std::size_t bit = 2 * i;
        const unsigned target = grayToLevel(static_cast<std::uint8_t>(
            (words[bit >> 6] >> (bit & 63u)) & 3u));
        // Off the intended symbol at the line tick (differential
        // writes leave unskipped cells on older drift clocks):
        // leave the line on the exact path.
        if (model.read(cell, writeTick) != target)
            return out;
        const Tick cellClean = model.cleanUntil(cell);
        if (cellClean < until)
            until = cellClean;
    }
    if (until < writeTick)
        return out;
    out.eligible = true;
    out.cleanUntil = until;
    return out;
}

} // namespace kernels
} // namespace pcmscrub

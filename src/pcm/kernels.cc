#include "pcm/kernels.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/random.hh"

namespace pcmscrub {
namespace kernels {

namespace {

/**
 * Hoisted drift-age term: u = log10(age / t0) for one program tick.
 * Cells written by the same full write share their tick, so the
 * common case evaluates one log10 per line; the cache re-evaluates
 * only when a cell sits on a different clock. The arithmetic is
 * exactly CellModel::senseLogR's, so the cached value is the value
 * the per-cell path would compute.
 */
class DriftAgeCache
{
  public:
    DriftAgeCache(Tick now, double t0_seconds)
        : now_(now), t0Seconds_(t0_seconds)
    {
    }

    double u(Tick write_tick)
    {
        if (!valid_ || write_tick != cachedTick_) {
            PCMSCRUB_ASSERT(now_ >= write_tick,
                            "reading before the cell was written");
            const double age = ticksToSeconds(now_ - write_tick);
            cachedU_ = age > t0Seconds_
                ? std::log10(age / t0Seconds_)
                : 0.0;
            cachedTick_ = write_tick;
            valid_ = true;
        }
        return cachedU_;
    }

  private:
    Tick now_;
    double t0Seconds_;
    Tick cachedTick_ = 0;
    double cachedU_ = 0.0;
    bool valid_ = false;
};

/** Sensed level of cell i: CellModel::read() against the planes. */
inline unsigned
senseLevel(const CellConstSpan &cells, std::size_t i,
           const DeviceConfig &config, DriftAgeCache &age,
           double threshold_shift)
{
    if (cells.stuck[i])
        return cells.stuckLevel[i];
    const double logR = static_cast<double>(cells.logR0[i]) +
        static_cast<double>(cells.nu[i]) * age.u(cells.writeTick[i]);
    unsigned level = 0;
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (logR > config.readThresholdLogR[l] + threshold_shift)
            level = l + 1;
    }
    return level;
}

} // namespace

BitVector
senseCodeword(const CellConstSpan &cells, std::size_t codeword_bits,
              bool slc_mode, const DeviceConfig &config, Tick now,
              double threshold_shift)
{
    BitVector word(codeword_bits);
    DriftAgeCache age(now, config.driftT0Seconds);
    std::uint64_t chunk = 0;
    unsigned filled = 0;
    std::size_t base = 0;
    if (slc_mode) {
        // Single wide threshold at the middle of the level range.
        for (std::size_t i = 0; i < codeword_bits; ++i) {
            const std::uint64_t bit =
                senseLevel(cells, i, config, age, threshold_shift) >=
                mlcLevels / 2;
            chunk |= bit << filled;
            if (++filled == 64) {
                word.deposit(base, 64, chunk);
                base += 64;
                chunk = 0;
                filled = 0;
            }
        }
    } else {
        for (std::size_t i = 0; i < cells.count; ++i) {
            const std::uint64_t gray = levelToGray(
                senseLevel(cells, i, config, age, threshold_shift));
            chunk |= gray << filled;
            filled += bitsPerCell;
            if (filled == 64) {
                word.deposit(base, 64, chunk);
                base += 64;
                chunk = 0;
                filled = 0;
            }
        }
    }
    // Tail chunk; the last cell of an odd-width codeword contributes
    // one bit more than the word holds, which deposit() masks off.
    if (base < codeword_bits)
        word.deposit(base, codeword_bits - base, chunk);
    return word;
}

unsigned
marginScanCount(const CellConstSpan &cells, const DeviceConfig &config,
                Tick now)
{
    DriftAgeCache age(now, config.driftT0Seconds);
    unsigned flagged = 0;
    for (std::size_t i = 0; i < cells.count; ++i) {
        if (cells.stuck[i])
            continue;
        // One sense serves both the level decision and the band
        // check — CellModel::marginFlagged computes the identical
        // value twice.
        const double logR = static_cast<double>(cells.logR0[i]) +
            static_cast<double>(cells.nu[i]) *
                age.u(cells.writeTick[i]);
        unsigned level = 0;
        for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
            if (logR > config.readThresholdLogR[l])
                level = l + 1;
        }
        if (!config.hasUpperThreshold(level))
            continue;
        flagged += logR > config.readThresholdLogR[level] -
            config.marginBandLogR;
    }
    return flagged;
}

LineProgramStats
programCodeword(const CellSpan &cells, const BitVector &codeword,
                std::size_t codeword_bits, bool slc_mode, Tick now,
                const CellModel &model, Random &rng, bool differential)
{
    const DeviceConfig &config = model.config();
    DriftAgeCache age(now, config.driftT0Seconds);
    const CellConstSpan read_view{
        cells.logR0,       cells.nu,         cells.nuSpeed,
        cells.enduranceWrites, cells.writes, cells.storedLevel,
        cells.stuck,       cells.stuckLevel, cells.writeTick,
        cells.count};

    LineProgramStats stats;
    for (std::size_t i = 0; i < cells.count; ++i) {
        unsigned level;
        if (slc_mode) {
            // One bit per cell, extreme levels only: full RESET for
            // 0, full SET for 1.
            level = codeword.get(i) ? mlcLevels - 1 : 0;
        } else {
            const std::size_t bit = i * bitsPerCell;
            std::uint8_t gray = codeword.get(bit) ? 1 : 0;
            if (bit + 1 < codeword_bits && codeword.get(bit + 1))
                gray |= 2;
            level = grayToLevel(gray);
        }
        if (cells.stuck[i]) {
            // Dead cells ignore programming (and the differential
            // read) — CellModel::program draws nothing for them.
            continue;
        }
        if (differential &&
            senseLevel(read_view, i, config, age, 0.0) == level) {
            continue; // Data-comparison write skips matching cells.
        }
        Cell cell = cells.ref(i).load();
        const ProgramOutcome outcome =
            model.program(cell, level, now, rng);
        cells.ref(i).store(cell);
        if (outcome.iterations > 0) {
            ++stats.cellsProgrammed;
            stats.totalIterations += outcome.iterations;
        }
        stats.cellsWornOut += outcome.wornOut;
    }
    return stats;
}

} // namespace kernels
} // namespace pcmscrub

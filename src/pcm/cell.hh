/**
 * @file
 * Cell-accurate MLC PCM model: one struct per cell plus a stateless
 * CellModel that implements programming, sensing, drift, and wear.
 *
 * Levels are Gray-coded (00, 01, 11, 10 for levels 0..3) so that the
 * dominant error mode — drifting across one threshold into the
 * adjacent band — flips exactly one stored bit.
 */

#ifndef PCMSCRUB_PCM_CELL_HH
#define PCMSCRUB_PCM_CELL_HH

#include <cstdint>

#include "common/types.hh"
#include "pcm/device_config.hh"

namespace pcmscrub {

class Random;

/** Gray encoding of a level index (2 bits). */
constexpr std::uint8_t
levelToGray(unsigned level)
{
    return static_cast<std::uint8_t>(level ^ (level >> 1));
}

/** Inverse Gray mapping for 2-bit symbols. */
constexpr unsigned
grayToLevel(std::uint8_t gray)
{
    // 00 -> 0, 01 -> 1, 11 -> 2, 10 -> 3.
    constexpr std::uint8_t table[4] = {0, 1, 3, 2};
    return table[gray & 3];
}

/**
 * State of one MLC cell.
 */
struct Cell
{
    /** Programmed resistance, log10 ohms, at write time. */
    float logR0 = 0.0f;

    /** This write's drift exponent (resampled per program). */
    float nu = 0.0f;

    /**
     * Intrinsic drift-speed factor, fixed at manufacturing: scales
     * every written drift exponent. Chronically fast cells re-fail
     * soon after each rewrite.
     */
    float nuSpeed = 1.0f;

    /** Endurance budget sampled once at manufacturing. */
    float enduranceWrites = 0.0f;

    /** Lifetime program count. */
    std::uint32_t writes = 0;

    /** Level the controller last tried to store. */
    std::uint8_t storedLevel = 0;

    /** Hard failure: the cell no longer responds to programming. */
    bool stuck = false;

    /** Level the cell is frozen at once stuck. */
    std::uint8_t stuckLevel = 0;

    /** Tick of the last successful program (drift clock zero). */
    Tick writeTick = 0;
};

/** Outcome of programming one cell. */
struct ProgramOutcome
{
    /** Program-and-verify iterations spent (0 if skipped). */
    unsigned iterations = 0;

    /** The cell wore out on this write. */
    bool wornOut = false;
};

/**
 * Stateless device physics shared by all cells of one device.
 */
class CellModel
{
  public:
    explicit CellModel(const DeviceConfig &config);

    const DeviceConfig &config() const { return config_; }

    /** Sample manufacturing-time state (endurance) for a fresh cell. */
    void initialize(Cell &cell, Random &rng) const;

    /**
     * Program a cell to `level` at time `now`.
     *
     * Samples the post-verify resistance and this write's drift
     * exponent, charges wear, and freezes the cell if its endurance
     * is exhausted (a stuck cell ignores programming).
     */
    ProgramOutcome program(Cell &cell, unsigned level, Tick now,
                           Random &rng) const;

    /** Resistance (log10 ohms) the cell would sense at time `now`. */
    double senseLogR(const Cell &cell, Tick now) const;

    /**
     * Level the read circuit reports at time `now`.
     *
     * @param threshold_shift raise every read threshold by this much
     *        (log10 ohms). A positive shift widens the sensing margin
     *        toward drift: cells that drifted slightly past a nominal
     *        threshold read back at their intended level. This is the
     *        slow reference-adjusted re-read the degradation ladder's
     *        retry stage performs.
     */
    unsigned read(const Cell &cell, Tick now,
                  double threshold_shift = 0.0) const;

    /**
     * Light margin read: true when the cell currently reads
     * *correctly* but its resistance is within the guard band below
     * the next threshold — i.e. it is about to drift into an error.
     * Already-failed cells are not flagged (the margin read cannot
     * know the intended level); the ECC path catches those.
     */
    bool marginFlagged(const Cell &cell, Tick now) const;

    /**
     * Last tick at which the cell is guaranteed to still read the
     * level it read at its writeTick. Drift exponents are clamped
     * non-negative, so the sensed level is monotone non-decreasing in
     * time and the clean interval is exactly [writeTick, cleanUntil].
     * Returns kNeverTick when no threshold crossing can ever occur
     * (top band, zero drift, or a stuck cell frozen at one level).
     */
    Tick cleanUntil(const Cell &cell) const;

  private:
    DeviceConfig config_;
};

} // namespace pcmscrub

#endif // PCMSCRUB_PCM_CELL_HH

/**
 * @file
 * Scalar reference pieces shared by the portable kernels
 * (kernels.cc) and the AVX2 translation unit (kernels_avx2.cc).
 *
 * The vector kernels process eight cells per step but must emit the
 * very bits the scalar loop would; tails shorter than one vector and
 * cells on diverged write clocks therefore run through these exact
 * helpers. Keeping them in one header (instead of duplicating the
 * arithmetic) is what makes "bit-identical" a structural property
 * rather than a test-enforced coincidence.
 */

#ifndef PCMSCRUB_PCM_KERNELS_IMPL_HH
#define PCMSCRUB_PCM_KERNELS_IMPL_HH

#include <cmath>

#include "common/logging.hh"
#include "common/types.hh"
#include "pcm/cell_storage.hh"
#include "pcm/device_config.hh"
#include "pcm/kernels.hh"

namespace pcmscrub {
namespace kernels {
namespace detail {

/**
 * Hoisted drift-age term: u = log10(age / t0) for one program tick.
 * Cells written by the same full write share their tick, so the
 * common case evaluates one log10 per line; the cache re-evaluates
 * only when a cell sits on a different clock. The arithmetic is
 * exactly CellModel::senseLogR's, so the cached value is the value
 * the per-cell path would compute.
 */
class DriftAgeCache
{
  public:
    DriftAgeCache(Tick now, double t0_seconds)
        : now_(now), t0Seconds_(t0_seconds)
    {
    }

    double u(Tick write_tick)
    {
        if (!valid_ || write_tick != cachedTick_) {
            PCMSCRUB_ASSERT(now_ >= write_tick,
                            "reading before the cell was written");
            const double age = ticksToSeconds(now_ - write_tick);
            cachedU_ = age > t0Seconds_
                ? std::log10(age / t0Seconds_)
                : 0.0;
            cachedTick_ = write_tick;
            valid_ = true;
        }
        return cachedU_;
    }

  private:
    Tick now_;
    double t0Seconds_;
    Tick cachedTick_ = 0;
    double cachedU_ = 0.0;
    bool valid_ = false;
};

/** Sensed level of cell i: CellModel::read() against the planes. */
inline unsigned
senseLevel(const CellConstSpan &cells, std::size_t i,
           const DeviceConfig &config, DriftAgeCache &age,
           double threshold_shift)
{
    if (cells.stuck(i))
        return cells.levelAt(i); // The gray plane holds the frozen
                                 // level.
    const double logR = static_cast<double>(cells.logR0(i)) +
        static_cast<double>(cells.nu(i)) * age.u(cells.writeTick(i));
    unsigned level = 0;
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (logR > config.readThresholdLogR[l] + threshold_shift)
            level = l + 1;
    }
    return level;
}

/**
 * Whether the light margin read would flag cell i — the scalar body
 * of marginScanCount (batched CellModel::marginFlagged, one sense
 * serving both the level decision and the band check).
 */
inline bool
marginFlagged(const CellConstSpan &cells, std::size_t i,
              const DeviceConfig &config, DriftAgeCache &age)
{
    if (cells.stuck(i))
        return false;
    const double logR = static_cast<double>(cells.logR0(i)) +
        static_cast<double>(cells.nu(i)) * age.u(cells.writeTick(i));
    unsigned level = 0;
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (logR > config.readThresholdLogR[l])
            level = l + 1;
    }
    if (!config.hasUpperThreshold(level))
        return false;
    return logR > config.readThresholdLogR[level] -
        config.marginBandLogR;
}

/**
 * CellModel::cleanUntil of one live cell, via the band-crossing
 * table: the table holds the transcendental crossing delta, this
 * chain re-applies the model's overflow checks and slack (which
 * depend on the write tick) in pure integer arithmetic. Each branch
 * mirrors one branch of the model — the sentinel is its NaN "claim
 * nothing" return, the double compare its representable-range check,
 * the re-check in integers its guard against that compare rounding
 * up — so the result is the model's bit for bit.
 */
inline Tick
lazyCellCleanUntil(const DriftCrossLut &lut, unsigned gray,
                   std::uint8_t q, std::uint8_t nu_idx,
                   Tick write_tick)
{
    const std::size_t k = DriftCrossLut::index(gray, q, nu_idx);
    const double deltaTicks = lut.crossDelta()[k];
    if (deltaTicks < 0.0)
        return write_tick;
    if (deltaTicks >=
        static_cast<double>(kNeverTick - write_tick))
        return kNeverTick;
    Tick delta = static_cast<Tick>(deltaTicks);
    const Tick slack = 2 + (delta >> 45);
    delta = delta > slack ? delta - slack : 0;
    if (delta >= kNeverTick - write_tick)
        return kNeverTick;
    return write_tick + lut.verifiedDelta()[k];
}

/**
 * Scalar body of the lazy-eligibility kernel over cells
 * [first, count): false as soon as a cell is stuck or off its
 * intended symbol at the line tick, otherwise folds each cell's
 * crossing into `until`. Shared by the portable loop and the AVX2
 * path's tails; `intended` is the raw intended-word plane, whose
 * packed 2-bit symbols line up with the Gray plane's.
 */
inline bool
lazyScanScalar(const CellConstSpan &cells,
               const std::uint64_t *intended, Tick line_write_tick,
               const DeviceConfig &config, const DriftCrossLut &lut,
               std::size_t first, Tick &until)
{
    DriftAgeCache age(line_write_tick, config.driftT0Seconds);
    for (std::size_t i = first; i < cells.count; ++i) {
        if (cells.stuck(i))
            return false;
        const unsigned g = cells.grayAt(i);
        const unsigned target = static_cast<unsigned>(
            (intended[i >> 5] >> ((i & 31u) * 2u)) & 3u);
        const Tick cellWt = cells.writeTick(i);
        if (cellWt == line_write_tick) {
            // Age 0: the sensed symbol is pure in the quantized
            // codes.
            if (static_cast<unsigned>(
                    lut.writeGray()[(g << 8) | cells.logRq[i]]) !=
                target)
                return false;
        } else {
            // Differential writes leave skipped cells on older
            // clocks; sense those at the line tick the exact way.
            const unsigned level =
                senseLevel(cells, i, config, age, 0.0);
            if (levelToGray(level) != target)
                return false;
        }
        const Tick cellClean = lazyCellCleanUntil(
            lut, g, cells.logRq[i], cells.nuIdx[i], cellWt);
        if (cellClean < until)
            until = cellClean;
    }
    return true;
}

} // namespace detail
} // namespace kernels
} // namespace pcmscrub

#endif // PCMSCRUB_PCM_KERNELS_IMPL_HH

/**
 * @file
 * Scalar reference pieces shared by the portable kernels
 * (kernels.cc) and the AVX2 translation unit (kernels_avx2.cc).
 *
 * The vector kernels process eight cells per step but must emit the
 * very bits the scalar loop would; tails shorter than one vector and
 * cells on diverged write clocks therefore run through these exact
 * helpers. Keeping them in one header (instead of duplicating the
 * arithmetic) is what makes "bit-identical" a structural property
 * rather than a test-enforced coincidence.
 */

#ifndef PCMSCRUB_PCM_KERNELS_IMPL_HH
#define PCMSCRUB_PCM_KERNELS_IMPL_HH

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "pcm/cell_storage.hh"
#include "pcm/device_config.hh"
#include "pcm/kernels.hh"

namespace pcmscrub {
namespace kernels {
namespace detail {

/**
 * Per-line scratch for the two-stage program pipelines: stage A
 * fills the draw buffers from the line/manufacturing streams in the
 * exact scalar draw order, stage B (vector or scalar) transforms
 * them into plane bytes. Thread-local in kernels.cc, so parallel
 * shards never share a buffer.
 */
struct ProgramScratch
{
    std::vector<double> z1, z2;     //!< warm line-stream z-scores
    std::vector<double> zE, zS;     //!< manufacturing z-scores
    std::vector<double> dIter, dLogR, dNu; //!< rewrite draw results
    std::vector<float> nuSpeedF, enduranceF;
    std::vector<std::uint8_t> level, alive;
};

/**
 * First-write wear-out screen bound: the warm cell freezes iff its
 * derived endurance float(exp(lnE)) <= 1.0 writes. exp(x) >= 1.28
 * for x > 1/4 even after float rounding, so only draws below the
 * cutoff pay the exact exp-and-compare.
 */
constexpr double kWarmWornLnCutoff = 0.25;

/**
 * QuantSpec::encodeNu with the spec constants passed by value, so
 * the vector kernels' scalar peel lanes can re-encode one cell
 * without the spec object. Expression-identical to the member
 * function (same compares, same lround of the same double chain).
 */
inline std::uint8_t
encodeNuValue(float value, double nu_min, double nu_max,
              double inv_nu_log_step)
{
    if (!(value > 0.0f))
        return 0; // Exact zero (clamped draws land here).
    const double v = static_cast<double>(value);
    if (v >= nu_max)
        return 254;
    if (v <= nu_min)
        return 1;
    const long code =
        std::lround(std::log(v / nu_min) * inv_nu_log_step) + 1;
    return static_cast<std::uint8_t>(std::clamp(code, 1L, 254L));
}

/**
 * Stage-B inputs of the warm-up pipeline: the Gray plane already
 * holds the target codeword, the z-score buffers hold this line's
 * draws in scalar order (z1/z2 from the line stream, zE/zS from the
 * per-cell manufacturing streams; zS is null when the drift-speed
 * sigma is zero and no draw was taken). The transform writes logRq
 * and nuIdx only — pure function of the buffers, no RNG.
 */
struct WarmTransformArgs
{
    const std::uint8_t *gray;
    std::uint8_t *logRq;
    std::uint8_t *nuIdx;
    const double *z1;
    const double *z2;
    const double *zE;
    const double *zS;
    std::size_t count;
    double logRScale;
    double lnNuMin;
    double lnNuMax;
    double invNuLogStep;
    double logMedianE;
    double sigmaE;
    double sigmaS;
    double driftMu[mlcLevels];
    double driftSig[mlcLevels];
};

/**
 * Scalar stage B of warm-up for cell i: exactly the arithmetic of
 * the original fused loop, reading draws from the scratch buffers.
 * Serves as the oracle for warmTransformAvx2 and as its peel path
 * (wear-out screen hits, subnormal drift terms, quantizer ties).
 */
inline void
warmTransformCell(const WarmTransformArgs &a, std::size_t i)
{
    const unsigned g = (a.gray[i >> 2] >> ((i & 3u) * 2u)) & 3u;
    const unsigned level =
        grayToLevel(static_cast<std::uint8_t>(g));

    // logR0 = mean[level] + sigma * z1 and the code is the
    // step-quantized delta from that same mean (sigma/step hoisted
    // to one multiply).
    const long code = std::lround(a.logRScale * a.z1[i]) +
        QuantSpec::kLogR0Bias;
    a.logRq[i] =
        static_cast<std::uint8_t>(std::clamp(code, 0L, 255L));

    const double lnE = a.logMedianE + a.sigmaE * a.zE[i];
    if (lnE <= kWarmWornLnCutoff &&
        1.0 >= static_cast<double>(
                   static_cast<float>(std::exp(lnE)))) {
        // Worn out by its very first write: the write succeeded, the
        // gray plane already holds the target level, and the cell
        // freezes there.
        a.nuIdx[i] = QuantSpec::kStuckNuIdx;
        return;
    }
    const double lnS = a.zS == nullptr ? 0.0 : a.sigmaS * a.zS[i];

    // nu = nuSpeed * max(0, mu[level] + sigma(level) * z2), encoded
    // in the log domain (encodeNu's clamp structure on ln nu) so no
    // exp is ever needed.
    const double w = a.driftMu[level] + a.driftSig[level] * a.z2[i];
    if (w <= 0.0) {
        a.nuIdx[i] = 0;
        return;
    }
    const double lnV = lnS + std::log(w);
    if (lnV >= a.lnNuMax) {
        a.nuIdx[i] = 254;
    } else if (lnV <= a.lnNuMin) {
        a.nuIdx[i] = 1;
    } else {
        const long nuCode =
            std::lround((lnV - a.lnNuMin) * a.invNuLogStep) + 1;
        a.nuIdx[i] = static_cast<std::uint8_t>(
            std::clamp(nuCode, 1L, 254L));
    }
}

/**
 * Stage-B inputs of the batched rewrite pipeline. Stage A decoded
 * the target levels, deposited them in the Gray plane (stuck cells'
 * frozen symbols preserved), and consumed the line stream in scalar
 * order into dIter/dLogR/dNu (dIter only for intermediate levels —
 * the scalar path draws it first). nuSpeedF/enduranceF hold each
 * cell's manufacturing floats (aux planes or derived); ovWrites /
 * ovTicks point into the materialized overlay, or are null when the
 * line stays on its uniform clock (then uniformWrites is the shared
 * pre-write count).
 */
struct ProgramTransformArgs
{
    std::uint8_t *logRq;
    std::uint8_t *nuIdx;
    const std::uint8_t *level;
    const std::uint8_t *alive;
    const double *dIter;
    const double *dLogR;
    const double *dNu;
    const float *nuSpeedF;
    const float *enduranceF;
    std::uint32_t *ovWrites;
    Tick *ovTicks;
    std::size_t count;
    Tick now;
    std::uint32_t uniformWrites;
    double maxIterations;
    double meanLogR[mlcLevels];
    double logR0Step;
    double nuMin;
    double nuMax;
    double invNuLogStep;
};

/**
 * Scalar stage B of one rewritten cell: CellModel::program's
 * arithmetic on the pre-drawn values followed by storePhysics'
 * encodes, fused so the float round-trips happen exactly once each,
 * in the model's order. meanLogR[level] is the same double
 * QuantSpec keys by Gray code (meanByGray[gray] is defined as
 * levelMeanLogR[grayToLevel(gray)]), so the encode delta is
 * bit-identical to encodeLogR0's. Oracle and tail/peel path of
 * programTransformAvx2.
 */
inline void
programTransformCell(const ProgramTransformArgs &a, std::size_t i,
                     LineProgramStats &stats)
{
    if (!a.alive[i])
        return;
    const unsigned level = a.level[i];
    unsigned iterations = 1;
    if (level != 0 && level != mlcLevels - 1) {
        iterations = static_cast<unsigned>(std::clamp(
            std::round(a.dIter[i]), 1.0, a.maxIterations));
    }
    const float logR0 = static_cast<float>(a.dLogR[i]);
    const double delta =
        static_cast<double>(logR0) - a.meanLogR[level];
    const long code =
        std::lround(delta / a.logR0Step) + QuantSpec::kLogR0Bias;
    a.logRq[i] =
        static_cast<std::uint8_t>(std::clamp(code, 0L, 255L));

    const float nu = static_cast<float>(
        static_cast<double>(a.nuSpeedF[i]) *
        std::max(0.0, a.dNu[i]));
    const std::uint32_t writes =
        (a.ovWrites != nullptr ? a.ovWrites[i] : a.uniformWrites) +
        1;
    const bool worn = static_cast<double>(writes) >=
        static_cast<double>(a.enduranceF[i]);
    a.nuIdx[i] = worn
        ? QuantSpec::kStuckNuIdx
        : encodeNuValue(nu, a.nuMin, a.nuMax, a.invNuLogStep);
    if (a.ovWrites != nullptr) {
        a.ovWrites[i] = writes;
        a.ovTicks[i] = a.now;
    }
    ++stats.cellsProgrammed;
    stats.totalIterations += iterations;
    stats.cellsWornOut += worn;
}

/**
 * Hoisted drift-age term: u = log10(age / t0) for one program tick.
 * Cells written by the same full write share their tick, so the
 * common case evaluates one log10 per line; the cache re-evaluates
 * only when a cell sits on a different clock. The arithmetic is
 * exactly CellModel::senseLogR's, so the cached value is the value
 * the per-cell path would compute.
 */
class DriftAgeCache
{
  public:
    DriftAgeCache(Tick now, double t0_seconds)
        : now_(now), t0Seconds_(t0_seconds)
    {
    }

    double u(Tick write_tick)
    {
        if (!valid_ || write_tick != cachedTick_) {
            PCMSCRUB_ASSERT(now_ >= write_tick,
                            "reading before the cell was written");
            const double age = ticksToSeconds(now_ - write_tick);
            cachedU_ = age > t0Seconds_
                ? std::log10(age / t0Seconds_)
                : 0.0;
            cachedTick_ = write_tick;
            valid_ = true;
        }
        return cachedU_;
    }

  private:
    Tick now_;
    double t0Seconds_;
    Tick cachedTick_ = 0;
    double cachedU_ = 0.0;
    bool valid_ = false;
};

/** Sensed level of cell i: CellModel::read() against the planes. */
inline unsigned
senseLevel(const CellConstSpan &cells, std::size_t i,
           const DeviceConfig &config, DriftAgeCache &age,
           double threshold_shift)
{
    if (cells.stuck(i))
        return cells.levelAt(i); // The gray plane holds the frozen
                                 // level.
    const double logR = static_cast<double>(cells.logR0(i)) +
        static_cast<double>(cells.nu(i)) * age.u(cells.writeTick(i));
    unsigned level = 0;
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (logR > config.readThresholdLogR[l] + threshold_shift)
            level = l + 1;
    }
    return level;
}

/**
 * Whether the light margin read would flag cell i — the scalar body
 * of marginScanCount (batched CellModel::marginFlagged, one sense
 * serving both the level decision and the band check).
 */
inline bool
marginFlagged(const CellConstSpan &cells, std::size_t i,
              const DeviceConfig &config, DriftAgeCache &age)
{
    if (cells.stuck(i))
        return false;
    const double logR = static_cast<double>(cells.logR0(i)) +
        static_cast<double>(cells.nu(i)) * age.u(cells.writeTick(i));
    unsigned level = 0;
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (logR > config.readThresholdLogR[l])
            level = l + 1;
    }
    if (!config.hasUpperThreshold(level))
        return false;
    return logR > config.readThresholdLogR[level] -
        config.marginBandLogR;
}

/**
 * CellModel::cleanUntil of one live cell, via the band-crossing
 * table: the table holds the transcendental crossing delta, this
 * chain re-applies the model's overflow checks and slack (which
 * depend on the write tick) in pure integer arithmetic. Each branch
 * mirrors one branch of the model — the sentinel is its NaN "claim
 * nothing" return, the double compare its representable-range check,
 * the re-check in integers its guard against that compare rounding
 * up — so the result is the model's bit for bit.
 */
inline Tick
lazyCellCleanUntil(const DriftCrossLut &lut, unsigned gray,
                   std::uint8_t q, std::uint8_t nu_idx,
                   Tick write_tick)
{
    const std::size_t k = DriftCrossLut::index(gray, q, nu_idx);
    const double deltaTicks = lut.crossDelta()[k];
    if (deltaTicks < 0.0)
        return write_tick;
    if (deltaTicks >=
        static_cast<double>(kNeverTick - write_tick))
        return kNeverTick;
    Tick delta = static_cast<Tick>(deltaTicks);
    const Tick slack = 2 + (delta >> 45);
    delta = delta > slack ? delta - slack : 0;
    if (delta >= kNeverTick - write_tick)
        return kNeverTick;
    return write_tick + lut.verifiedDelta()[k];
}

/**
 * Scalar body of the lazy-eligibility kernel over cells
 * [first, count): false as soon as a cell is stuck or off its
 * intended symbol at the line tick, otherwise folds each cell's
 * crossing into `until`. Shared by the portable loop and the AVX2
 * path's tails; `intended` is the raw intended-word plane, whose
 * packed 2-bit symbols line up with the Gray plane's.
 */
inline bool
lazyScanScalar(const CellConstSpan &cells,
               const std::uint64_t *intended, Tick line_write_tick,
               const DeviceConfig &config, const DriftCrossLut &lut,
               std::size_t first, Tick &until)
{
    DriftAgeCache age(line_write_tick, config.driftT0Seconds);
    for (std::size_t i = first; i < cells.count; ++i) {
        if (cells.stuck(i))
            return false;
        const unsigned g = cells.grayAt(i);
        const unsigned target = static_cast<unsigned>(
            (intended[i >> 5] >> ((i & 31u) * 2u)) & 3u);
        const Tick cellWt = cells.writeTick(i);
        if (cellWt == line_write_tick) {
            // Age 0: the sensed symbol is pure in the quantized
            // codes.
            if (static_cast<unsigned>(
                    lut.writeGray()[(g << 8) | cells.logRq[i]]) !=
                target)
                return false;
        } else {
            // Differential writes leave skipped cells on older
            // clocks; sense those at the line tick the exact way.
            const unsigned level =
                senseLevel(cells, i, config, age, 0.0);
            if (levelToGray(level) != target)
                return false;
        }
        const Tick cellClean = lazyCellCleanUntil(
            lut, g, cells.logRq[i], cells.nuIdx[i], cellWt);
        if (cellClean < until)
            until = cellClean;
    }
    return true;
}

} // namespace detail
} // namespace kernels
} // namespace pcmscrub

#endif // PCMSCRUB_PCM_KERNELS_IMPL_HH

/**
 * @file
 * A memory line backed by MLC cells: the unit of scrub, ECC, and
 * rewrite. The Line itself is a thin handle — all cell state, the
 * intended codeword, and the write bookkeeping live in a CellStorage
 * (the array's shared planes for array-backed lines, a line-owned
 * single-line storage for standalone lines and SLC annexes). Per-cell
 * access survives as CellRef proxy views; the hot paths run the
 * batched kernels over plane spans.
 */

#ifndef PCMSCRUB_PCM_LINE_HH
#define PCMSCRUB_PCM_LINE_HH

#include <memory>

#include "common/bitvector.hh"
#include "common/types.hh"
#include "pcm/cell.hh"
#include "pcm/cell_storage.hh"

namespace pcmscrub {

class Random;
class SnapshotSink;
class SnapshotSource;

/** Aggregate result of programming a line. */
struct LineProgramStats
{
    /** Cells that actually received program pulses. */
    unsigned cellsProgrammed = 0;

    /** Total program-and-verify iterations across those cells. */
    std::uint64_t totalIterations = 0;

    /** Cells that reached their endurance limit during this write. */
    unsigned cellsWornOut = 0;
};

/**
 * One ECC-protected line of MLC cells.
 */
class Line
{
  public:
    /**
     * A standalone line storing codeword_bits bits (2 per cell,
     * padded); owns its cell planes (aux mode: manufacturing state
     * comes from the caller's RNG, not a derivation stream).
     */
    explicit Line(std::size_t codeword_bits);

    /**
     * An array-backed line occupying line `line_index` of an
     * array-owned CellStorage. The storage must outlive the line and
     * its per-line stride must match this line's MLC cell count.
     */
    Line(std::size_t codeword_bits, CellStorage *storage,
         std::size_t line_index);

    Line(Line &&) = default;
    Line &operator=(Line &&) = default;

    /**
     * Fresh-silicon manufacturing state for every cell. Aux-mode
     * storage draws from `rng` (exact f32 planes); compact storage
     * advances the line's manufacturing generation instead and draws
     * nothing — the new state is derived on demand.
     */
    void initialize(const CellModel &model, Random &rng);

    std::size_t codewordBits() const { return codewordBits_; }
    unsigned cellCount() const
    {
        return static_cast<unsigned>(count_);
    }

    /**
     * Program the line to hold `codeword`.
     *
     * @param differential only program cells whose *current read
     *        value* differs from the target (data-comparison write:
     *        cheaper, but does not reset the drift clock of
     *        unchanged cells). A full write reprograms every cell
     *        and restarts all drift clocks — what a scrub refresh
     *        needs.
     */
    LineProgramStats writeCodeword(const BitVector &codeword, Tick now,
                                   const CellModel &model, Random &rng,
                                   bool differential = false);

    /**
     * Construction-time program of this (fresh, MLC, array-backed)
     * line at tick 0 via kernels::warmProgramCodeword — its own draw
     * discipline on `rng` (the backend's per-line warm-up stream),
     * an order of magnitude fewer transcendentals than
     * writeCodeword, and no per-line stats. Only valid as the very
     * first write of a line.
     */
    void warmWriteCodeword(const BitVector &codeword,
                           const CellModel &model, Random &rng);

    /**
     * Sense every cell and return the (possibly corrupted) word.
     *
     * @param threshold_shift widened-margin retry sensing; see
     *        CellModel::read()
     */
    BitVector readCodeword(Tick now, const CellModel &model,
                           double threshold_shift = 0.0) const;

    /** Number of cells the light margin read would flag. */
    unsigned marginScanCount(Tick now, const CellModel &model) const;

    /**
     * Ground truth: bit errors between what the line should hold
     * and what a read would return right now.
     */
    unsigned trueBitErrors(Tick now, const CellModel &model) const;

    /** Permanently failed cells. */
    unsigned stuckCellCount() const;

    /** The codeword the controller believes is stored. */
    BitVector intendedWord() const;

    /**
     * intendedWord() into an existing buffer, reusing its backing
     * capacity — the per-visit form for read paths that would
     * otherwise allocate a fresh BitVector per clean line.
     */
    void copyIntendedWord(BitVector &out) const;

    /** Tick of the last full write (drift reference for policies). */
    Tick lastWriteTick() const
    {
        return active_->lineLastWriteTick(activeLine_);
    }

    /** Lifetime count of line-level write operations. */
    std::uint64_t lineWrites() const
    {
        return active_->lineWrites(activeLine_);
    }

    /**
     * Direct cell access for tests and fault injection: a bundle of
     * references into the SoA planes. Bind with `auto`; assignments
     * through the members write the planes directly.
     */
    CellRef cell(unsigned index)
    {
        boundsCheck(index);
        return active_->ref(baseCell() + index);
    }

    CellConstRef cell(unsigned index) const
    {
        boundsCheck(index);
        return static_cast<const CellStorage *>(active_)->ref(
            baseCell() + index);
    }

    /** Copy of one cell's state (for value-based physics queries). */
    Cell cellValue(unsigned index) const { return cell(index).load(); }

    /**
     * Cell state without the manufacturing fields (see
     * CellStorage::loadPhysics): enough for read/cleanUntil/
     * marginFlagged, skipping the compact-mode derivation cost.
     */
    Cell cellPhysics(unsigned index) const
    {
        boundsCheck(index);
        return active_->loadPhysics(baseCell() + index);
    }

    /** Plane views over this line's cells (kernel input). */
    CellSpan span() { return active_->span(activeLine_, count_); }
    CellConstSpan span() const
    {
        return active_->constSpan(activeLine_, count_);
    }

    /** Level cell `index` must hold for the intended codeword. */
    unsigned targetLevelFor(unsigned index) const
    {
        return targetLevel(
            active_->intendedWords(activeLine_), index);
    }

    /**
     * Spare-remap model for repair: freeze every stuck cell at the
     * level the intended data wants, so the line reads correctly
     * again (a real controller would map the cell to a spare and
     * route accesses there).
     */
    void remapStuckToIntended();

    /**
     * Drop the line to SLC operation: one bit per cell, stored as
     * the extreme levels only (full SET / full RESET). The enormous
     * level margin makes drift effectively harmless, at the cost of
     * half the line's density — the cells of a paired line are
     * annexed to keep the codeword width. The line stays SLC for the
     * rest of its life; the caller must rewrite it afterwards.
     *
     * The annexed cells live in a line-owned aux-mode storage (the
     * array's shared planes have fixed stride); the pre-fallback cell
     * state is copied over, compact-derived fields materializing as
     * explicit floats.
     */
    void setSlcMode(const CellModel &model, Random &rng);

    /** Whether the line has fallen back to SLC operation. */
    bool slcMode() const { return slcMode_; }

    /** Heap bytes owned by this line (standalone/SLC storage). */
    std::size_t ownedBytes() const;

    /** Serialize every cell plus line-level state. */
    void saveState(SnapshotSink &sink) const;

    /**
     * Restore state written by saveState(). The line must have been
     * constructed with the same codeword width; mismatches and
     * out-of-range cell fields are fatal.
     */
    void loadState(SnapshotSource &source);

  private:
    /** Target level of cell `index` for a codeword's raw words. */
    unsigned targetLevel(const std::uint64_t *words,
                         unsigned index) const;

    /** Cells a line of this width uses in MLC mode. */
    std::size_t mlcCellCount() const
    {
        return (codewordBits_ + bitsPerCell - 1) / bitsPerCell;
    }

    std::size_t intendedWordCount() const
    {
        return (codewordBits_ + 63) / 64;
    }

    std::size_t baseCell() const
    {
        return activeLine_ * active_->cellsPerLine();
    }

    void boundsCheck(unsigned index) const;

    /**
     * Move the line onto a fresh owned single-line aux storage sized
     * for SLC (one cell per codeword bit), copying meta, intended
     * word, and the current cells' state.
     */
    void buildSlcAnnex();

    /** Point the line back at MLC storage (snapshot restores only). */
    void restoreMlcView();

    std::size_t codewordBits_;

    // Array home position (null arrayHome_ for standalone lines).
    CellStorage *arrayHome_ = nullptr;
    std::size_t arrayLine_ = 0;

    // Line-owned storage: the standalone backing store, or the SLC
    // annex of an array-backed line.
    std::unique_ptr<CellStorage> owned_;

    // Active storage: where this line's cells, intended word, and
    // write meta currently live.
    CellStorage *active_ = nullptr;
    std::size_t activeLine_ = 0;
    std::size_t count_ = 0;

    bool slcMode_ = false;
};

} // namespace pcmscrub

#endif // PCMSCRUB_PCM_LINE_HH

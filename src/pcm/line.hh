/**
 * @file
 * A memory line backed by MLC cells: the unit of scrub, ECC, and
 * rewrite. Holds both the physical cells and the intended codeword
 * so experiments can measure ground-truth error counts.
 */

#ifndef PCMSCRUB_PCM_LINE_HH
#define PCMSCRUB_PCM_LINE_HH

#include <vector>

#include "common/bitvector.hh"
#include "common/types.hh"
#include "pcm/cell.hh"

namespace pcmscrub {

class Random;
class SnapshotSink;
class SnapshotSource;

/** Aggregate result of programming a line. */
struct LineProgramStats
{
    /** Cells that actually received program pulses. */
    unsigned cellsProgrammed = 0;

    /** Total program-and-verify iterations across those cells. */
    std::uint64_t totalIterations = 0;

    /** Cells that reached their endurance limit during this write. */
    unsigned cellsWornOut = 0;
};

/**
 * One ECC-protected line of MLC cells.
 */
class Line
{
  public:
    /** A line storing codeword_bits bits (2 per cell, padded). */
    explicit Line(std::size_t codeword_bits);

    /** Sample manufacturing state for every cell. */
    void initialize(const CellModel &model, Random &rng);

    std::size_t codewordBits() const { return codewordBits_; }
    unsigned cellCount() const
    {
        return static_cast<unsigned>(cells_.size());
    }

    /**
     * Program the line to hold `codeword`.
     *
     * @param differential only program cells whose *current read
     *        value* differs from the target (data-comparison write:
     *        cheaper, but does not reset the drift clock of
     *        unchanged cells). A full write reprograms every cell
     *        and restarts all drift clocks — what a scrub refresh
     *        needs.
     */
    LineProgramStats writeCodeword(const BitVector &codeword, Tick now,
                                   const CellModel &model, Random &rng,
                                   bool differential = false);

    /**
     * Sense every cell and return the (possibly corrupted) word.
     *
     * @param threshold_shift widened-margin retry sensing; see
     *        CellModel::read()
     */
    BitVector readCodeword(Tick now, const CellModel &model,
                           double threshold_shift = 0.0) const;

    /** Number of cells the light margin read would flag. */
    unsigned marginScanCount(Tick now, const CellModel &model) const;

    /**
     * Ground truth: bit errors between what the line should hold
     * and what a read would return right now.
     */
    unsigned trueBitErrors(Tick now, const CellModel &model) const;

    /** Permanently failed cells. */
    unsigned stuckCellCount() const;

    /** The codeword the controller believes is stored. */
    const BitVector &intendedWord() const { return intended_; }

    /** Tick of the last full write (drift reference for policies). */
    Tick lastWriteTick() const { return lastWriteTick_; }

    /** Lifetime count of line-level write operations. */
    std::uint64_t lineWrites() const { return lineWrites_; }

    /** Direct cell access for tests and fault injection. */
    Cell &cell(unsigned index) { return cells_.at(index); }
    const Cell &cell(unsigned index) const { return cells_.at(index); }

    /** Level cell `index` must hold for the intended codeword. */
    unsigned targetLevelFor(unsigned index) const
    {
        return targetLevel(intended_, index);
    }

    /**
     * Spare-remap model for repair: freeze every stuck cell at the
     * level the intended data wants, so the line reads correctly
     * again (a real controller would map the cell to a spare and
     * route accesses there).
     */
    void remapStuckToIntended();

    /**
     * Drop the line to SLC operation: one bit per cell, stored as
     * the extreme levels only (full SET / full RESET). The enormous
     * level margin makes drift effectively harmless, at the cost of
     * half the line's density — the cells of a paired line are
     * annexed to keep the codeword width. The line stays SLC for the
     * rest of its life; the caller must rewrite it afterwards.
     */
    void setSlcMode(const CellModel &model, Random &rng);

    /** Whether the line has fallen back to SLC operation. */
    bool slcMode() const { return slcMode_; }

    /** Serialize every cell plus line-level state. */
    void saveState(SnapshotSink &sink) const;

    /**
     * Restore state written by saveState(). The line must have been
     * constructed with the same codeword width; mismatches and
     * out-of-range cell fields are fatal.
     */
    void loadState(SnapshotSource &source);

  private:
    /** Target level of cell `index` for a codeword. */
    unsigned targetLevel(const BitVector &codeword,
                         unsigned index) const;

    std::size_t codewordBits_;
    std::vector<Cell> cells_;
    BitVector intended_;
    Tick lastWriteTick_ = 0;
    std::uint64_t lineWrites_ = 0;
    bool slcMode_ = false;
};

} // namespace pcmscrub

#endif // PCMSCRUB_PCM_LINE_HH

#include "pcm/wear.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/math.hh"

namespace pcmscrub {

WearModel::WearModel(const DeviceConfig &config)
    : scaledMedian_(config.enduranceMedian * config.enduranceScale),
      sigmaLn_(config.enduranceSigmaLn)
{
    PCMSCRUB_ASSERT(scaledMedian_ > 0.0, "endurance must be positive");
    PCMSCRUB_ASSERT(sigmaLn_ > 0.0, "endurance spread must be positive");
}

double
WearModel::failureCdf(double writes) const
{
    if (writes <= 0.0)
        return 0.0;
    const double z = (std::log(writes) - std::log(scaledMedian_)) /
        sigmaLn_;
    return normalCdf(z);
}

double
WearModel::conditionalFailure(double w1, double w2) const
{
    PCMSCRUB_ASSERT(w2 >= w1, "write counts must be ordered");
    const double f1 = failureCdf(w1);
    const double f2 = failureCdf(w2);
    if (f1 >= 1.0)
        return 1.0;
    const double p = (f2 - f1) / (1.0 - f1);
    return p < 0.0 ? 0.0 : (p > 1.0 ? 1.0 : p);
}

} // namespace pcmscrub

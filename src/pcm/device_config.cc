#include "pcm/device_config.hh"

#include "common/logging.hh"

namespace pcmscrub {

void
DeviceConfig::validate() const
{
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (levelMeanLogR[l] >= levelMeanLogR[l + 1])
            fatal("level means must increase (level %u)", l);
        if (readThresholdLogR[l] <= levelMeanLogR[l] ||
            readThresholdLogR[l] >= levelMeanLogR[l + 1]) {
            fatal("threshold %u (%.2f) must lie between level means "
                  "%.2f and %.2f",
                  l, readThresholdLogR[l], levelMeanLogR[l],
                  levelMeanLogR[l + 1]);
        }
    }
    if (sigmaLogR <= 0.0)
        fatal("sigmaLogR must be positive");
    if (driftSigmaRatio < 0.0)
        fatal("driftSigmaRatio must be non-negative");
    if (driftSpeedSigmaLn < 0.0)
        fatal("driftSpeedSigmaLn must be non-negative");
    if (driftT0Seconds <= 0.0)
        fatal("driftT0Seconds must be positive");
    for (unsigned l = 0; l < mlcLevels; ++l) {
        if (driftMu[l] < 0.0)
            fatal("driftMu[%u] must be non-negative", l);
    }
    if (enduranceMedian <= 0.0 || enduranceScale <= 0.0)
        fatal("endurance parameters must be positive");
    if (maxProgramIterations < 1)
        fatal("need at least one program iteration");
}

} // namespace pcmscrub

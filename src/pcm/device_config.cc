#include "pcm/device_config.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace pcmscrub {

void
DeviceConfig::validate() const
{
    for (unsigned l = 0; l + 1 < mlcLevels; ++l) {
        if (levelMeanLogR[l] >= levelMeanLogR[l + 1])
            fatal("level means must increase (level %u)", l);
        if (readThresholdLogR[l] <= levelMeanLogR[l] ||
            readThresholdLogR[l] >= levelMeanLogR[l + 1]) {
            fatal("threshold %u (%.2f) must lie between level means "
                  "%.2f and %.2f",
                  l, readThresholdLogR[l], levelMeanLogR[l],
                  levelMeanLogR[l + 1]);
        }
    }
    if (sigmaLogR <= 0.0)
        fatal("sigmaLogR must be positive");
    if (driftSigmaRatio < 0.0)
        fatal("driftSigmaRatio must be non-negative");
    if (driftSpeedSigmaLn < 0.0)
        fatal("driftSpeedSigmaLn must be non-negative");
    if (driftT0Seconds <= 0.0)
        fatal("driftT0Seconds must be positive");
    for (unsigned l = 0; l < mlcLevels; ++l) {
        if (driftMu[l] < 0.0)
            fatal("driftMu[%u] must be non-negative", l);
    }
    if (enduranceMedian <= 0.0 || enduranceScale <= 0.0)
        fatal("endurance parameters must be positive");
    if (maxProgramIterations < 1)
        fatal("need at least one program iteration");
}

void
DeviceConfig::addToFingerprint(Fingerprint &fp) const
{
    for (const double v : levelMeanLogR)
        fp.f64(v);
    for (const double v : readThresholdLogR)
        fp.f64(v);
    fp.f64(sigmaLogR);
    for (const double v : driftMu)
        fp.f64(v);
    fp.f64(driftSigmaRatio);
    fp.f64(driftSpeedSigmaLn);
    fp.f64(driftT0Seconds);
    fp.f64(marginBandLogR);
    fp.f64(enduranceMedian);
    fp.f64(enduranceSigmaLn);
    fp.f64(enduranceScale);
    fp.u64(maxProgramIterations);
    fp.f64(meanIterationsIntermediate);
    fp.f64(sigmaIterations);
    fp.u64(readLatency);
    fp.u64(programIterationLatency);
    fp.f64(readEnergyPerCell);
    fp.f64(marginReadExtraPerCell);
    fp.f64(programPulseEnergyPerCell);
    fp.f64(secdedDecodeEnergy);
    fp.f64(lightDetectEnergy);
    fp.f64(bchCheckEnergy);
    fp.f64(bchFullDecodeEnergy);
}

} // namespace pcmscrub

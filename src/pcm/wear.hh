/**
 * @file
 * Analytic endurance (hard-error) model: the population-level
 * counterpart of the per-cell endurance sampling in CellModel.
 *
 * Cell endurance is log-normal; the analytic backend asks "given a
 * line has survived w1 writes, how many of its cells die by w2?"
 * and answers with the conditional failure probability below.
 */

#ifndef PCMSCRUB_PCM_WEAR_HH
#define PCMSCRUB_PCM_WEAR_HH

#include <cstdint>

#include "pcm/device_config.hh"

namespace pcmscrub {

/**
 * Log-normal endurance statistics.
 */
class WearModel
{
  public:
    explicit WearModel(const DeviceConfig &config);

    /** P(cell endurance <= writes). */
    double failureCdf(double writes) const;

    /**
     * P(cell dies in (w1, w2] | alive after w1) — the per-cell
     * hazard the analytic backend applies incrementally.
     */
    double conditionalFailure(double w1, double w2) const;

    /** Median endurance after scaling. */
    double scaledMedian() const { return scaledMedian_; }

  private:
    double scaledMedian_;
    double sigmaLn_;
};

} // namespace pcmscrub

#endif // PCMSCRUB_PCM_WEAR_HH

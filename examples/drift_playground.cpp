/**
 * @file
 * Drift playground: watch one ECC line of real MLC cells age.
 *
 * Programs a single BCH-8-protected line on the cell-accurate
 * backend and steps through time, showing at each instant what the
 * three check mechanisms would report — the margin read's early
 * warning, the light detector's verdict, the decoder's error count —
 * against the ground truth. Then rewrites the line and shows the
 * chronic fast-drifting cells re-failing.
 *
 *   $ ./drift_playground [seed] [--seed N]
 */

#include <cstdio>
#include <cstdlib>

#include "common/cli.hh"
#include "scrub/cell_backend.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

namespace {

void
showLine(CellBackend &device, LineIndex line, Tick now,
         const char *when)
{
    const unsigned truth = device.trueErrors(line, now);
    const unsigned flagged = device.marginScan(line, now);
    const bool looksClean = device.lightDetectClean(line, now);
    const FullDecodeOutcome outcome = device.fullDecode(line, now);
    std::printf("%-8s | truth: %2u bad cells | margin flags: %2u | "
                "light detect: %-5s | decoder: %s (%u)\n",
                when, truth, flagged, looksClean ? "clean" : "dirty",
                outcome.uncorrectable ? "UNCORRECTABLE" : "corrects",
                outcome.errors);
}

} // namespace

int
main(int argc, char **argv)
{
    const char *seedArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 2026, &seedArg);
    // This harness steps one line by hand rather than running a wake
    // loop, so it has nothing to checkpoint.
    CheckpointRuntime::global().configure(opt, /*supported=*/false);

    CellBackendConfig config;
    config.lines = 16;
    config.scheme = EccScheme::bch(8);
    config.seed = seedArg != nullptr
        ? static_cast<std::uint64_t>(std::atoll(seedArg)) : opt.seed;
    CellBackend device(config);

    const LineIndex line = 0;
    std::printf("One BCH-8 line (%u MLC cells), written at t=0. "
                "Drift raises amorphous-cell resistance as t^nu; "
                "Gray coding turns each band crossing into one bit "
                "error.\n\n",
                device.cellsPerLine());

    const struct { const char *label; double seconds; } steps[] = {
        {"+1min", 60.0},     {"+1h", 3600.0},
        {"+6h", 21600.0},    {"+1day", 86400.0},
        {"+4days", 345600.0}, {"+2weeks", 1.21e6},
    };
    for (const auto &step : steps)
        showLine(device, line, secondsToTicks(step.seconds),
                 step.label);

    // Scrub rewrite: correct data is reprogrammed, all drift clocks
    // restart — but the *same* chronically fast cells drift again.
    const Tick rewriteAt = secondsToTicks(1.21e6);
    device.scrubRewrite(line, rewriteAt);
    std::printf("\n--- scrub rewrite at +2weeks "
                "(drift clocks reset) ---\n\n");

    for (const auto &step : steps) {
        showLine(device, line,
                 rewriteAt + secondsToTicks(step.seconds),
                 step.label);
    }

    std::printf("\nNote how errors repeat at similar horizons after "
                "the rewrite: the same weak cells fail again. "
                "Rewrite-on-any-error scrubbing chases them forever; "
                "the paper's threshold policies absorb them inside "
                "the ECC budget.\n");

    const ScrubMetrics &m = device.metrics();
    std::printf("\noperations performed: %llu margin scans, %llu "
                "detects, %llu decodes, %llu rewrites "
                "(energy %.1f nJ)\n",
                static_cast<unsigned long long>(m.marginScans),
                static_cast<unsigned long long>(m.lightDetects),
                static_cast<unsigned long long>(m.fullDecodes),
                static_cast<unsigned long long>(m.scrubRewrites),
                m.energy.total() * 1e-3);
    return 0;
}

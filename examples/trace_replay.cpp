/**
 * @file
 * Trace replay: capture a workload once, then compare scrub
 * mechanisms on *identical* demand traffic.
 *
 * The cell-accurate backend is driven request by request from a
 * trace (recorded here from a synthetic generator; the same text
 * format loads external traces), interleaved with each candidate
 * scrub policy. Because every candidate sees byte-identical traffic
 * and a same-seeded device, differences in the outcome table are
 * attributable to the mechanism alone.
 *
 *   $ ./trace_replay [trace-file] [--seed N] [--threads N]
 *
 * With no argument a Zipf trace is generated, saved to
 * ./trace_replay.trace for inspection, and replayed.
 */

#include <cstdio>
#include <memory>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "scrub/cell_backend.hh"
#include "scrub/factory.hh"
#include "sim/trace.hh"
#include "sim/workload.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

namespace {

constexpr std::size_t kLines = 512;

Trace
obtainTrace(const char *path, std::uint64_t seed)
{
    if (path != nullptr)
        return Trace::load(path);

    WorkloadConfig config;
    config.kind = WorkloadKind::Zipf;
    config.requestsPerSecond = 4000.0 / 3600.0; // ~4k ops/hour.
    config.readFraction = 0.5;
    config.workingSetLines = kLines;
    Workload workload(config, seed + 88);
    // Ten simulated days of traffic.
    Trace trace = Trace::capture(
        workload, static_cast<std::uint64_t>(4000.0 * 24 * 10));
    if (trace.save("trace_replay.trace"))
        inform("trace saved to ./trace_replay.trace");
    return trace;
}

ScrubMetrics
replay(const Trace &trace, const EccScheme &scheme,
       const PolicySpec &spec, std::uint64_t seed)
{
    CellBackendConfig config;
    config.lines = kLines;
    config.scheme = scheme;
    config.seed = seed; // Identical device for every candidate.
    CellBackend device(config);
    const auto policy = makePolicy(spec, device);

    std::size_t cursor = 0;
    const Tick horizon = trace.empty()
        ? secondsToTicks(86400.0)
        : trace[trace.size() - 1].arrival;
    while (true) {
        const Tick scrubAt = policy->nextWake();
        const bool traceLeft = cursor < trace.size();
        if (!traceLeft && scrubAt > horizon)
            break;
        if (traceLeft && trace[cursor].arrival <= scrubAt) {
            const MemRequest &req = trace[cursor++];
            if (req.line >= kLines)
                fatal("trace line %llu exceeds the %zu-line device",
                      static_cast<unsigned long long>(req.line),
                      kLines);
            if (req.type == ReqType::Write)
                device.demandWrite(req.line, req.arrival);
            // Reads need no state change in the cell backend.
        } else {
            if (scrubAt > horizon)
                break;
            policy->wake(device, scrubAt);
        }
    }
    return device.metrics();
}

} // namespace

int
main(int argc, char **argv)
{
    const char *traceArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 11, &traceArg);
    const Trace trace = obtainTrace(traceArg, opt.seed);
    // This harness's simulation state (its trace cursor and hand-
    // rolled loops) lives outside the snapshot runtime.
    CheckpointRuntime::global().configure(opt, /*supported=*/false);

    std::printf("replaying %zu requests (%llu writes) spanning "
                "%.1f days on a %zu-line device\n",
                trace.size(),
                static_cast<unsigned long long>(
                    trace.countOf(ReqType::Write)),
                ticksToSeconds(trace.span()) / 86400.0, kLines);

    struct Candidate
    {
        const char *label;
        EccScheme scheme;
        PolicySpec spec;
    };
    PolicySpec basic;
    basic.kind = PolicyKind::Basic;
    basic.interval = secondsToTicks(3600.0);
    PolicySpec threshold;
    threshold.kind = PolicyKind::Threshold;
    threshold.interval = secondsToTicks(3600.0);
    threshold.rewriteThreshold = 6;
    PolicySpec combined;
    combined.kind = PolicyKind::Combined;
    combined.targetLineUeProb = 1e-7;
    combined.rewriteHeadroom = 2;
    combined.linesPerRegion = 64;

    const Candidate candidates[] = {
        {"basic/secded/1h", EccScheme::secdedX8(), basic},
        {"threshold6/bch8/1h", EccScheme::bch(8), threshold},
        {"combined/bch8", EccScheme::bch(8), combined},
    };

    Table table("Identical-traffic comparison",
                {"mechanism", "checks", "rewrites", "ue", "miscorrect",
                 "scrub_energy_uJ"});
    for (const auto &candidate : candidates) {
        const ScrubMetrics m =
            replay(trace, candidate.scheme, candidate.spec, opt.seed);
        table.row()
            .cell(candidate.label)
            .cell(m.linesChecked)
            .cell(m.scrubRewrites)
            .cell(m.scrubUncorrectable)
            .cell(m.miscorrections)
            .cell(m.energy.total() * 1e-6, 2);
    }
    table.print();
    return 0;
}

/**
 * @file
 * Quickstart: simulate one week of MLC-PCM scrubbing in ~20 lines.
 *
 * Builds a sampled 4 Mi-cell device protected by BCH-8, runs the
 * paper's combined scrub mechanism against it with server-like
 * demand traffic, and prints what happened.
 *
 *   $ ./quickstart [--seed N] [--threads N]
 *                  [--checkpoint PATH [--checkpoint-every H]]
 *                  [--resume PATH]
 */

#include <cstdio>

#include "common/cli.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

int
main(int argc, char **argv)
{
    const CliOptions opt = parseCliOptions(argc, argv, 42);
    CheckpointRuntime::global().configure(opt);

    // A sampled region of the device: 8192 ECC lines of 512 data
    // bits each, BCH-8 protected, with default MLC PCM physics.
    AnalyticConfig config;
    config.lines = 8192;
    config.scheme = EccScheme::bch(8);
    config.demand.writesPerLinePerSecond = 1e-5; // ~1 write / 28 h
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = opt.seed;
    AnalyticBackend device(config);

    // The paper's combined mechanism: light detection gates the
    // decoder, rewrites wait for the ECC headroom threshold, and
    // checks are scheduled by drift-model risk, not a fixed period.
    PolicySpec spec;
    spec.kind = PolicyKind::Combined;
    spec.targetLineUeProb = 1e-7;
    spec.rewriteHeadroom = 2;
    spec.linesPerRegion = 64;
    const auto policy = makePolicy(spec, device);

    std::printf("simulating 7 days of '%s' scrub over %llu lines...\n",
                policy->name().c_str(),
                static_cast<unsigned long long>(device.lineCount()));
    runCheckpointed(device, *policy, secondsToTicks(7 * 86400.0));

    const ScrubMetrics &m = device.metrics();
    std::printf("\n%s\n\n", m.toString().c_str());
    std::printf("line checks        : %llu\n",
                static_cast<unsigned long long>(m.linesChecked));
    std::printf("corrective rewrites: %llu\n",
                static_cast<unsigned long long>(m.scrubRewrites));
    std::printf("cell errors fixed  : %llu\n",
                static_cast<unsigned long long>(m.correctedErrors));
    std::printf("uncorrectable      : %.2f (scrub %llu + demand %.2f)\n",
                m.totalUncorrectable(),
                static_cast<unsigned long long>(m.scrubUncorrectable),
                m.demandUncorrectable);
    std::printf("scrub energy       : %.1f uJ\n",
                m.energy.total() * 1e-6);
    return 0;
}

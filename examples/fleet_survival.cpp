/**
 * @file
 * Fleet survival: a supervised campaign over N heterogeneous devices.
 *
 * Every device is drawn from one seeded manufacturing spread — its
 * drift speed, endurance median, and fault-mix rates are log-normal
 * perturbations of the template device — and runs the same scrub
 * policy over the simulated horizon under full supervision: watchdog
 * deadline, bounded retry with exponential backoff, quarantine after
 * consecutive failures, and per-device checkpoint/resume. The
 * campaign aggregates the population survival/UE/energy curves over
 * the devices that reported and prints explicit coverage accounting
 * (completed / resumed / quarantined / skipped always sums to the
 * device count), then writes the full fleet manifest as JSON.
 *
 * --chaos turns on deterministic harness-failure injection: a seeded
 * fraction of devices get killed at wake boundaries, have their
 * snapshots corrupted before the resume, fail allocation, or overrun
 * a forced deadline. The campaign still exits 0 — victims either
 * recover (resumed, bit-identical to the chaos-free run) or are
 * quarantined with the reason recorded in the manifest.
 *
 *   $ ./fleet_survival [config.ini] [--devices N] [--chaos]
 *                      [--seed N] [--threads N]
 *
 * The optional INI config uses the shared run-config keys plus the
 * [fleet] section (fleet.devices, fleet.drift_spread,
 * fleet.endurance_spread, fleet.fault_spread, fleet.retry_max,
 * fleet.quarantine_after, fleet.backoff_base_ms, fleet.deadline_ms,
 * fleet.curve_points); see examples/configs/fleet_survival.ini.
 */

#include <cstdio>

#include "common/cli.hh"
#include "common/table.hh"
#include "common/thread_pool.hh"
#include "fleet/fleet_runner.hh"
#include "scrub/run_config.hh"

using namespace pcmscrub;

int
main(int argc, char **argv)
{
    const char *configArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 7, &configArg);

    // Template device: BCH-4 MLC PCM under Zipf traffic, weak enough
    // that the slow tail of the manufacturing spread actually loses
    // lines over the horizon.
    AnalyticRunConfig run;
    run.policy.kind = PolicyKind::Basic;
    run.policy.interval = secondsToTicks(1800.0);
    run.backend.lines = 2048;
    run.backend.scheme = EccScheme::bch(4);
    run.backend.demand.kind = WorkloadKind::Zipf;
    run.backend.demand.writesPerLinePerSecond = 1e-5;
    run.backend.demand.readsPerLinePerSecond = 1e-4;
    run.days = 7.0;
    if (configArg != nullptr) {
        run = loadRunConfig(configArg, run);
        if (run.threads != 0)
            ThreadPool::global().resize(run.threads);
    }

    FleetConfig fleet;
    fleet.settings = run.fleet;
    if (opt.devices != 0)
        fleet.settings.devices = opt.devices;
    fleet.base = run.backend;
    if (opt.lines != 0)
        fleet.base.lines = opt.lines;
    fleet.policy = run.policy;
    fleet.days = run.days;
    fleet.fleetSeed = opt.seed;
    fleet.snapshotDir = "fleet_snapshots";
    fleet.chaos.enabled = opt.chaos;

    // Baseline fault mix the per-device fault spread scales: light
    // wear-correlated stuck cells plus read disturb.
    fleet.faults.stuckPerWrite = 1e-4;
    fleet.faults.wearCorrelation = 4.0;
    fleet.faults.disturbFlipsPerRead = 1e-3;
    fleet.faults.burstProbPerRead = 1e-5;

    std::printf("fleet survival: %llu devices, %s backend, %s policy, "
                "%.0f days%s\n\n",
                static_cast<unsigned long long>(
                    fleet.settings.devices),
                fleetBackendKindName(fleet.backendKind),
                policyKindName(fleet.policy.kind), fleet.days,
                opt.chaos ? ", CHAOS ON" : "");

    const FleetResult result = runFleet(fleet);

    std::printf("coverage: %llu completed, %llu resumed, "
                "%llu quarantined, %llu skipped (of %llu; %s)\n",
                static_cast<unsigned long long>(result.completed),
                static_cast<unsigned long long>(result.resumed),
                static_cast<unsigned long long>(result.quarantined),
                static_cast<unsigned long long>(result.skipped),
                static_cast<unsigned long long>(
                    result.devices.size()),
                result.coverageComplete() ? "complete"
                                          : "INCOMPLETE");
    if (fleet.chaos.enabled) {
        std::printf("chaos: %llu planned victims, %llu planned "
                    "quarantines\n",
                    static_cast<unsigned long long>(
                        result.plannedVictims),
                    static_cast<unsigned long long>(
                        result.plannedQuarantines));
        for (std::size_t i = 0; i < result.devices.size(); ++i) {
            const SupervisedResult &device = result.devices[i];
            if (device.outcome != DeviceOutcome::Quarantined)
                continue;
            std::printf("  device %zu quarantined: %s\n", i,
                        device.quarantineReason.c_str());
        }
    }

    Table curve("Population trajectory (reporting devices)",
                {"day", "survival", "mean_ue", "mean_energy_pj",
                 "reporting"});
    for (const FleetCurvePoint &point : result.curve) {
        curve.row()
            .cell(point.days, 2)
            .cell(point.survivalFraction, 3)
            .cellSci(point.meanUncorrectable, 2)
            .cellSci(point.meanEnergyPj, 3)
            .cell(static_cast<double>(point.devicesReporting), 0);
    }
    std::printf("\n");
    curve.print();

    const char *manifestPath = "fleet_manifest.json";
    writeFleetManifest(manifestPath, fleet, result);
    std::printf("\nfleet manifest written to %s\n", manifestPath);

    // Graceful degradation is the contract: harness failures end as
    // resumes or recorded quarantines, never as a nonzero exit.
    return 0;
}

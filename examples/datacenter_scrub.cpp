/**
 * @file
 * Datacenter scenario: size the scrub mechanism for a PCM-based
 * server fleet, then run its RAS control plane closed-loop.
 *
 * Part 1 (fleet sizing): a fleet operator with N terabytes of MLC
 * PCM main memory wants to know, for several candidate scrub
 * configurations: how many machine-check events per year to expect,
 * how much device lifetime scrubbing consumes, and what the scrub
 * power works out to. Each candidate runs over a simulated month of
 * Zipf-skewed traffic on a sampled region and extrapolates to fleet
 * scale.
 *
 * Part 2 (closed loop): a weaker BCH-4 device whose reliability
 * problem is the chronic fast-drifter tail. A line whose weakest
 * cells drift over threshold within one sweep gap re-fails after
 * every rewrite, so how much of the device is "chronic" depends
 * steeply on the scrub interval. Three operating modes face it:
 *
 *   - fixed_relaxed: scrub at the longest interval the control
 *     plane allows. The chronic tail at that gap dwarfs the PPR and
 *     spare-line budgets; once they exhaust, UEs surface all month.
 *   - fixed_tight: scrub at the shortest allowed interval. The tail
 *     is tiny and the SLO holds, but every line is swept around the
 *     clock — an order of magnitude more scrub energy.
 *   - closed_loop: start tight (the safe direction for an unknown
 *     device), let the PPR rung prune the tail, then let the
 *     ScrubRateController relax the interval step by step while
 *     telemetry stays calm, tightening again the moment the UE rate
 *     approaches the SLO.
 *
 * Every mode emits identical JSONL telemetry (--telemetry PATH), and
 * the whole run is kill -9 safe via the usual --checkpoint/--resume
 * flags: controller state, PPR remaps, and telemetry counters all
 * live in the snapshot, so a resumed run is bit-identical.
 *
 *   $ ./datacenter_scrub [fleet_TB] [--seed N] [--threads N]
 *                        [--telemetry ras.jsonl]
 *                        [--checkpoint snap --checkpoint-every 6]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "ras/controlled_scrub.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"
#include "scrub/sweep_scrub.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

namespace {

struct Candidate
{
    const char *label;
    EccScheme scheme;
    PolicySpec spec;
};

/** Shared geometry of the closed-loop phase. */
struct RasPhaseConfig
{
    std::uint64_t lines;
    double days;
    std::uint64_t seed;
};

/**
 * The device every RAS mode runs against: BCH-4 MLC PCM whose
 * chronic fast-drifter tail is the reliability problem. How many
 * lines are "chronic" depends steeply on the scrub interval — a line
 * whose weakest cells cross within the sweep gap re-fails after
 * every rewrite until a repair rung moves it to new silicon. At a
 * 30-minute gap that tail is a couple dozen lines; at six hours it
 * is a sizable slice of the device, far beyond any repair budget.
 */
AnalyticConfig
rasDeviceConfig(const RasPhaseConfig &phase)
{
    AnalyticConfig config;
    config.lines = phase.lines;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 2;
    config.demand.kind = WorkloadKind::Zipf;
    config.demand.writesPerLinePerSecond = 1e-5;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = phase.seed;
    config.degradation.enabled = true;
    // PPR-first ladder: a sweep-detected UE fuses the address to a
    // spare row immediately (threshold 1, no retry rung), and the
    // spare-line pool backstops the remap table. Re-reads and ECP
    // re-learning cannot cure a chronically fast-drifting row, so
    // rungs that merely re-try the same silicon are disabled.
    config.degradation.maxRetries = 0;
    config.degradation.ecpRepair = false;
    config.degradation.pprSpareRows = 256;
    config.degradation.pprUeThreshold = 1;
    config.degradation.spareLines = 64;
    config.degradation.slcFallback = false;
    return config;
}

RasSettings
rasSettings()
{
    RasSettings ras;
    ras.enabled = true;
    ras.minIntervalS = 1800.0;      // 30 min floor.
    ras.maxIntervalS = 6.0 * 3600;  // 6 h ceiling.
    ras.sloUePerLineDay = 5e-4;
    ras.writeBudgetPerLineDay = 0.0;
    ras.sampleEveryS = 6.0 * 3600;  // Sample four times a day.
    ras.stepFactor = 2.0;
    ras.hysteresis = 0.3;
    ras.linesPerRegion = 256;
    return ras;
}

/** Outcome of one RAS mode over the month. */
struct RasModeResult
{
    double ueRate = 0.0;        //!< UEs per line-day, whole month.
    double writesLineDay = 0.0; //!< Scrub writes per line-day.
    double energyLineDay = 0.0; //!< Total array energy, pJ/line-day.
    double finalIntervalS = 0.0;
    std::uint64_t pprUsed = 0;
    std::uint64_t retired = 0;
};

RasModeResult
runRasMode(const RasPhaseConfig &phase, const char *label,
           double start_interval_s, bool auto_tune,
           TelemetryLogger *log)
{
    AnalyticBackend device(rasDeviceConfig(phase));

    RasSettings ras = rasSettings();
    ControlledScrub policy(
        std::make_unique<StrongEccScrub>(
            secondsToTicks(start_interval_s)),
        device, ras, auto_tune, label, log);

    const Tick horizon = secondsToTicks(phase.days * 86400.0);
    runCheckpointed(device, policy, horizon);

    const ScrubMetrics &m = device.metrics();
    RasModeResult result;
    const double lineDays =
        static_cast<double>(phase.lines) * phase.days;
    result.ueRate = (static_cast<double>(m.ueSurfaced) +
                     m.demandUncorrectable) /
        lineDays;
    result.writesLineDay =
        static_cast<double>(m.scrubRewrites) / lineDays;
    result.energyLineDay = m.energy.total() / lineDays;
    result.finalIntervalS = policy.controlPlane().scrubIntervalS();
    result.pprUsed = m.uePprRemapped;
    result.retired = m.ueRetired;
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *fleetArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 7, &fleetArg);
    const double fleetTb = fleetArg != nullptr ? std::atof(fleetArg)
                                               : 64.0;
    if (fleetTb <= 0.0)
        fatal("usage: datacenter_scrub [fleet_TB > 0] "
              "[--seed N] [--threads N]");
    CheckpointRuntime::global().configure(opt);

    const std::uint64_t lines = opt.lines != 0 ? opt.lines : 4096;
    constexpr double days = 30.0;
    const Tick horizon = secondsToTicks(days * 86400.0);

    PolicySpec basicHourly;
    basicHourly.kind = PolicyKind::Basic;
    basicHourly.interval = secondsToTicks(3600.0);

    PolicySpec basicDaily = basicHourly;
    basicDaily.interval = secondsToTicks(86400.0);

    PolicySpec threshold;
    threshold.kind = PolicyKind::Threshold;
    threshold.interval = secondsToTicks(3600.0);
    threshold.rewriteThreshold = 6;

    PolicySpec combined;
    combined.kind = PolicyKind::Combined;
    combined.targetLineUeProb = 1e-7;
    combined.rewriteHeadroom = 2;
    combined.linesPerRegion = 64;

    const Candidate candidates[] = {
        {"DRAM habits (SECDED, daily)", EccScheme::secdedX8(),
         basicDaily},
        {"DRAM mechanism, forced hourly", EccScheme::secdedX8(),
         basicHourly},
        {"BCH-8 + threshold, hourly", EccScheme::bch(8), threshold},
        {"BCH-8 combined (paper)", EccScheme::bch(8), combined},
    };

    std::printf("Sizing scrub for a %.0f TB MLC-PCM fleet "
                "(one simulated month, Zipf traffic, scaled up)\n",
                fleetTb);

    // Fleet scale factor: simulated lines are 64 B each.
    const double fleetLines = fleetTb * 1e12 / 64.0;
    const double scale = fleetLines / static_cast<double>(lines);

    Table table("Fleet projection",
                {"configuration", "machine_checks/yr",
                 "rewrites/line/day", "lifetime_burn_%/yr",
                 "avg_scrub_power_W"});
    for (const auto &candidate : candidates) {
        AnalyticConfig config;
        config.lines = lines;
        config.scheme = candidate.scheme;
        config.demand.kind = WorkloadKind::Zipf;
        config.demand.writesPerLinePerSecond = 1e-5;
        config.demand.readsPerLinePerSecond = 1e-4;
        config.seed = opt.seed; // Same device for every candidate.
        AnalyticBackend device(config);
        const auto policy = makePolicy(candidate.spec, device);
        runCheckpointed(device, *policy, horizon);
        const ScrubMetrics &m = device.metrics();

        const double perYear = 365.0 / days;
        const double machineChecks = m.totalUncorrectable() * scale *
            perYear;
        const double rewritesLineDay =
            static_cast<double>(m.scrubRewrites) / lines / days;
        // Lifetime burn: scrub writes per year over 1e8 endurance.
        const double burnPercent = rewritesLineDay * 365.0 / 1e8 *
            100.0;
        // Average power: energy in pJ over the month, fleet-scaled.
        const double watts = m.energy.total() * 1e-12 * scale /
            (days * 86400.0);
        table.row()
            .cell(candidate.label)
            .cellSci(machineChecks, 2)
            .cell(rewritesLineDay, 4)
            .cellSci(burnPercent, 2)
            .cell(watts, 2);
    }
    table.print();

    std::printf("\nReading the table: 'DRAM habits' is how a DRAM "
                "controller would scrub — drift makes it unusable. "
                "Forcing it hourly helps reliability but burns "
                "endurance and energy. The paper's combined "
                "mechanism is the only candidate that holds machine "
                "checks near zero at a tenth of the hourly "
                "baseline's writes and energy.\n");

    // Part 2: the RAS control plane against an aging device --------

    const RasSettings ras = rasSettings();
    const RasPhaseConfig phase{lines, days, opt.seed};

    std::unique_ptr<TelemetryLogger> log;
    if (!opt.telemetryPath.empty())
        log = std::make_unique<TelemetryLogger>(opt.telemetryPath);

    std::printf("\nClosed-loop phase: BCH-4 device whose chronic "
                "fast-drifter tail depends steeply on the sweep "
                "gap. SLO: %.1e host-visible UEs per line-day; "
                "interval bounds [%.0f s, %.0f s].\n",
                ras.sloUePerLineDay, ras.minIntervalS,
                ras.maxIntervalS);

    const RasModeResult relaxed =
        runRasMode(phase, "fixed_relaxed", ras.maxIntervalS,
                   /*auto_tune=*/false, log.get());
    const RasModeResult tight =
        runRasMode(phase, "fixed_tight", ras.minIntervalS,
                   /*auto_tune=*/false, log.get());
    // The closed loop starts at the conservative floor and relaxes
    // only as telemetry stays calm — the safe direction to explore
    // an unknown device from.
    const RasModeResult loop =
        runRasMode(phase, "closed_loop", ras.minIntervalS,
                   /*auto_tune=*/true, log.get());

    Table rasTable("RAS control plane over one month",
                   {"mode", "ue/line/day", "slo_held",
                    "rewrites/line/day", "energy_pj/line/day",
                    "final_interval_s", "ppr_remaps", "retired"});
    const auto addRow = [&](const char *mode,
                            const RasModeResult &r) {
        rasTable.row()
            .cell(mode)
            .cellSci(r.ueRate, 2)
            .cell(r.ueRate <= ras.sloUePerLineDay ? "yes" : "NO")
            .cell(r.writesLineDay, 4)
            .cellSci(r.energyLineDay, 3)
            .cell(r.finalIntervalS, 0)
            .cell(static_cast<double>(r.pprUsed), 0)
            .cell(static_cast<double>(r.retired), 0);
    };
    addRow("fixed_relaxed", relaxed);
    addRow("fixed_tight", tight);
    addRow("closed_loop", loop);
    rasTable.print();

    std::printf("\nReading the table: at the relaxed fixed interval "
                "the chronic-drifter tail dwarfs the repair budget — "
                "PPR and the spare pool exhaust on day one and the "
                "SLO is gone. The tight fixed interval holds the SLO "
                "but pays the full sweep cost all month. The closed "
                "loop starts tight and probes longer intervals "
                "whenever telemetry stays calm, letting the PPR rung "
                "prune the marginal tail each step — it holds the "
                "same SLO below the tight fixture's scrub energy and "
                "write budget, and the telemetry log records every "
                "decision it made along the way.\n");
    if (log != nullptr)
        std::printf("Telemetry JSONL appended to %s "
                    "(tools/telemetry_summary.py renders it).\n",
                    log->path().c_str());
    return 0;
}

/**
 * @file
 * Datacenter scenario: size the scrub mechanism for a PCM-based
 * server fleet.
 *
 * A fleet operator with N terabytes of MLC PCM main memory wants to
 * know, for several candidate scrub configurations: how many
 * machine-check events per year to expect, how much device lifetime
 * scrubbing consumes, and what the scrub power works out to. The
 * example runs each candidate over a simulated month of Zipf-skewed
 * traffic on a sampled region and extrapolates to fleet scale.
 *
 *   $ ./datacenter_scrub [fleet_TB] [--seed N] [--threads N]
 *                                        (default 64 TB)
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

namespace {

struct Candidate
{
    const char *label;
    EccScheme scheme;
    PolicySpec spec;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *fleetArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 7, &fleetArg);
    const double fleetTb = fleetArg != nullptr ? std::atof(fleetArg)
                                               : 64.0;
    if (fleetTb <= 0.0)
        fatal("usage: datacenter_scrub [fleet_TB > 0] "
              "[--seed N] [--threads N]");
    CheckpointRuntime::global().configure(opt);

    constexpr std::uint64_t lines = 4096;
    constexpr double days = 30.0;
    const Tick horizon = secondsToTicks(days * 86400.0);

    PolicySpec basicHourly;
    basicHourly.kind = PolicyKind::Basic;
    basicHourly.interval = secondsToTicks(3600.0);

    PolicySpec basicDaily = basicHourly;
    basicDaily.interval = secondsToTicks(86400.0);

    PolicySpec threshold;
    threshold.kind = PolicyKind::Threshold;
    threshold.interval = secondsToTicks(3600.0);
    threshold.rewriteThreshold = 6;

    PolicySpec combined;
    combined.kind = PolicyKind::Combined;
    combined.targetLineUeProb = 1e-7;
    combined.rewriteHeadroom = 2;
    combined.linesPerRegion = 64;

    const Candidate candidates[] = {
        {"DRAM habits (SECDED, daily)", EccScheme::secdedX8(),
         basicDaily},
        {"DRAM mechanism, forced hourly", EccScheme::secdedX8(),
         basicHourly},
        {"BCH-8 + threshold, hourly", EccScheme::bch(8), threshold},
        {"BCH-8 combined (paper)", EccScheme::bch(8), combined},
    };

    std::printf("Sizing scrub for a %.0f TB MLC-PCM fleet "
                "(one simulated month, Zipf traffic, scaled up)\n",
                fleetTb);

    // Fleet scale factor: simulated lines are 64 B each.
    const double fleetLines = fleetTb * 1e12 / 64.0;
    const double scale = fleetLines / static_cast<double>(lines);

    Table table("Fleet projection",
                {"configuration", "machine_checks/yr",
                 "rewrites/line/day", "lifetime_burn_%/yr",
                 "avg_scrub_power_W"});
    for (const auto &candidate : candidates) {
        AnalyticConfig config;
        config.lines = lines;
        config.scheme = candidate.scheme;
        config.demand.kind = WorkloadKind::Zipf;
        config.demand.writesPerLinePerSecond = 1e-5;
        config.demand.readsPerLinePerSecond = 1e-4;
        config.seed = opt.seed; // Same device for every candidate.
        AnalyticBackend device(config);
        const auto policy = makePolicy(candidate.spec, device);
        runCheckpointed(device, *policy, horizon);
        const ScrubMetrics &m = device.metrics();

        const double perYear = 365.0 / days;
        const double machineChecks = m.totalUncorrectable() * scale *
            perYear;
        const double rewritesLineDay =
            static_cast<double>(m.scrubRewrites) / lines / days;
        // Lifetime burn: scrub writes per year over 1e8 endurance.
        const double burnPercent = rewritesLineDay * 365.0 / 1e8 *
            100.0;
        // Average power: energy in pJ over the month, fleet-scaled.
        const double watts = m.energy.total() * 1e-12 * scale /
            (days * 86400.0);
        table.row()
            .cell(candidate.label)
            .cellSci(machineChecks, 2)
            .cell(rewritesLineDay, 4)
            .cellSci(burnPercent, 2)
            .cell(watts, 2);
    }
    table.print();

    std::printf("\nReading the table: 'DRAM habits' is how a DRAM "
                "controller would scrub — drift makes it unusable. "
                "Forcing it hourly helps reliability but burns "
                "endurance and energy. The paper's combined "
                "mechanism is the only candidate that holds machine "
                "checks near zero at a tenth of the hourly "
                "baseline's writes and energy.\n");
    return 0;
}

/**
 * @file
 * Full system: every layer of the stack composed on real cells.
 *
 * A miniature PCM module end to end: demand traffic is routed
 * through Start-Gap wear leveling onto a cell-accurate array whose
 * lines carry BCH-8 plus ECP-4 hard-error pointers, while the
 * combined scrub mechanism patrols physical frames. Endurance is
 * scaled down so the device ages through its whole life during the
 * run, and the example reports how the layers share the work:
 * wear leveling flattens write damage, ECP absorbs the cells that
 * die anyway, BCH + scrub handle drift.
 *
 *   $ ./full_system [days] [--seed N] [--threads N]
 *                   [--checkpoint PATH [--checkpoint-every H]]
 *                   [--resume PATH]
 *                                (default 30 simulated days)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "mem/wear_leveling.hh"
#include "scrub/adaptive_scrub.hh"
#include "scrub/cell_backend.hh"
#include "sim/workload.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

int
main(int argc, char **argv)
{
    const char *daysArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 2026, &daysArg);
    const double days = daysArg != nullptr ? std::atof(daysArg) : 30.0;
    if (days <= 0.0)
        fatal("usage: full_system [days > 0] [--seed N] [--threads N]");
    CheckpointRuntime &runtime = CheckpointRuntime::global();
    runtime.configure(opt);

    // Device: 512 logical lines on 513 physical frames of real MLC
    // cells, endurance scaled so wear-out happens within the run.
    constexpr std::uint64_t logicalLines = 512;
    CellBackendConfig config;
    config.lines = logicalLines + 1; // +1 Start-Gap spare frame.
    config.scheme = EccScheme::bch(8);
    config.ecpEntries = 8;
    config.device.enduranceMedian = 100000.0;
    config.device.enduranceSigmaLn = 0.5;
    config.seed = opt.seed;
    CellBackend device(config);

    StartGapMapper mapper(logicalLines, /*gap_interval=*/64);

    // Demand: Zipf-hot writes, ~2000 line-writes per simulated hour.
    WorkloadConfig wConfig;
    wConfig.kind = WorkloadKind::Zipf;
    wConfig.requestsPerSecond = 2000.0 / 3600.0;
    wConfig.readFraction = 0.0;
    wConfig.workingSetLines = logicalLines;
    Workload demand(wConfig, opt.seed + 1);

    // Scrub: the paper's combined mechanism over physical frames.
    CombinedScrub scrub(1e-7, 2, device, 64);

    std::printf("full system: %llu logical lines -> %llu frames, "
                "%s + ECP-%u, Start-Gap psi=64, combined scrub, "
                "%.0f days\n\n",
                static_cast<unsigned long long>(logicalLines),
                static_cast<unsigned long long>(device.lineCount()),
                device.code().name().c_str(), config.ecpEntries,
                days);

    // Two explicit event streams — demand arrivals and scrub wakes —
    // merged by arrival time. Scrub-wake boundaries are the
    // checkpoint points: everything the loop carries besides the
    // backend and policy (the workload generator, the wear-level
    // mapper, the in-flight request, the gap-copy tally) is
    // serialized via the runtime's extra-state hooks.
    const Tick horizon = secondsToTicks(days * 86400.0);
    std::uint64_t gapCopies = 0;
    MemRequest pending = demand.next();

    runtime.setExtraState(
        [&](SnapshotSink &sink) {
            demand.saveState(sink);
            mapper.saveState(sink);
            sink.u8(static_cast<std::uint8_t>(pending.type));
            sink.u64(pending.line);
            sink.u64(pending.arrival);
            sink.u64(gapCopies);
        },
        [&](SnapshotSource &source) {
            demand.loadState(source);
            mapper.loadState(source);
            const std::uint8_t type = source.u8();
            if (type > static_cast<unsigned>(ReqType::RetryRead))
                source.corrupt("unknown request type");
            pending.type = static_cast<ReqType>(type);
            pending.line = source.u64();
            if (pending.line >= logicalLines)
                source.corrupt("pending request addresses a line "
                               "past the working set");
            pending.arrival = source.u64();
            gapCopies = source.u64();
        });

    const std::uint64_t ordinal = runtime.beginRun();
    std::uint64_t wakes = 0;
    if (const auto restored = runtime.tryRestore(device, scrub,
                                                 ordinal))
        wakes = restored->wakes;

    for (;;) {
        const Tick nextScrub = scrub.nextWake();
        const bool demandDue = pending.arrival <= horizon &&
            pending.arrival <= nextScrub;
        if (!demandDue && nextScrub > horizon)
            break;
        if (demandDue) {
            const Tick now = pending.arrival;
            device.demandWrite(mapper.physical(pending.line), now);
            if (const auto move = mapper.recordWrite()) {
                // The gap copy relocates a frame's content; modelled
                // as a rewrite of the source frame's payload at the
                // target.
                device.array().line(move->to).writeCodeword(
                    device.array().line(move->from).intendedWord(),
                    now, device.array().model(),
                    device.array().rng());
                ++gapCopies;
            }
            pending = demand.next();
        } else {
            const Tick now = nextScrub;
            scrub.wake(device, now);
            ++wakes;
            if (runtime.enabled()) {
                runtime.poll(device, scrub,
                             CheckpointMeta{ordinal, now, wakes,
                                            scrub.name()});
            }
        }
    }
    runtime.clearExtraState();

    const ScrubMetrics &m = device.metrics();
    std::printf("demand writes        : %llu (+%llu gap copies)\n",
                static_cast<unsigned long long>(m.demandWrites),
                static_cast<unsigned long long>(gapCopies));
    std::printf("scrub checks         : %llu\n",
                static_cast<unsigned long long>(m.linesChecked));
    std::printf("scrub rewrites       : %llu\n",
                static_cast<unsigned long long>(m.scrubRewrites));
    std::printf("cells worn out       : %llu\n",
                static_cast<unsigned long long>(m.cellsWornOut));
    std::printf("uncorrectable lines  : %llu\n",
                static_cast<unsigned long long>(m.scrubUncorrectable));
    std::printf("silent miscorrections: %llu\n",
                static_cast<unsigned long long>(m.miscorrections));

    // Wear profile across physical frames.
    std::vector<std::uint64_t> wear;
    wear.reserve(device.lineCount());
    for (LineIndex frame = 0; frame < device.lineCount(); ++frame)
        wear.push_back(device.array().line(frame).lineWrites());
    std::sort(wear.begin(), wear.end());
    const double mean = static_cast<double>(
        std::accumulate(wear.begin(), wear.end(), 0ull)) /
        static_cast<double>(wear.size());
    std::printf("\nwear/frame: mean %.1f, median %llu, max %llu "
                "(max/mean %.2f — Start-Gap keeps the Zipf hot set "
                "from burning single frames)\n",
                mean,
                static_cast<unsigned long long>(wear[wear.size() / 2]),
                static_cast<unsigned long long>(wear.back()),
                static_cast<double>(wear.back()) / mean);

    // How much hard-error work ECP absorbed.
    std::uint64_t ecpEntriesUsed = 0;
    std::uint64_t framesWithStuck = 0;
    for (LineIndex frame = 0; frame < device.lineCount(); ++frame) {
        ecpEntriesUsed += device.ecpUsed(frame);
        framesWithStuck +=
            device.array().line(frame).stuckCellCount() > 0;
    }
    std::printf("ECP entries in use: %llu across %llu frames with "
                "stuck cells\n",
                static_cast<unsigned long long>(ecpEntriesUsed),
                static_cast<unsigned long long>(framesWithStuck));
    std::printf("scrub energy: %.1f uJ (%s)\n",
                m.energy.total() * 1e-6, m.energy.toString().c_str());
    return 0;
}

/**
 * @file
 * Full system: every layer of the stack composed on real cells.
 *
 * A miniature PCM module end to end: demand traffic is routed
 * through Start-Gap wear leveling onto a cell-accurate array whose
 * lines carry BCH-8 plus ECP-4 hard-error pointers, while the
 * combined scrub mechanism patrols physical frames. Endurance is
 * scaled down so the device ages through its whole life during the
 * run, and the example reports how the layers share the work:
 * wear leveling flattens write damage, ECP absorbs the cells that
 * die anyway, BCH + scrub handle drift.
 *
 *   $ ./full_system [days] [--seed N] [--threads N]
 *                                (default 30 simulated days)
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <numeric>
#include <vector>

#include "common/cli.hh"
#include "common/logging.hh"
#include "mem/wear_leveling.hh"
#include "sim/event_queue.hh"
#include "scrub/adaptive_scrub.hh"
#include "scrub/cell_backend.hh"
#include "sim/workload.hh"

using namespace pcmscrub;

int
main(int argc, char **argv)
{
    const char *daysArg = nullptr;
    const CliOptions opt = parseCliOptions(argc, argv, 2026, &daysArg);
    const double days = daysArg != nullptr ? std::atof(daysArg) : 30.0;
    if (days <= 0.0)
        fatal("usage: full_system [days > 0] [--seed N] [--threads N]");

    // Device: 512 logical lines on 513 physical frames of real MLC
    // cells, endurance scaled so wear-out happens within the run.
    constexpr std::uint64_t logicalLines = 512;
    CellBackendConfig config;
    config.lines = logicalLines + 1; // +1 Start-Gap spare frame.
    config.scheme = EccScheme::bch(8);
    config.ecpEntries = 8;
    config.device.enduranceMedian = 100000.0;
    config.device.enduranceSigmaLn = 0.5;
    config.seed = opt.seed;
    CellBackend device(config);

    StartGapMapper mapper(logicalLines, /*gap_interval=*/64);
    LineIndex currentLine = 0;

    // Demand: Zipf-hot writes, ~2000 line-writes per simulated hour.
    WorkloadConfig wConfig;
    wConfig.kind = WorkloadKind::Zipf;
    wConfig.requestsPerSecond = 2000.0 / 3600.0;
    wConfig.readFraction = 0.0;
    wConfig.workingSetLines = logicalLines;
    Workload demand(wConfig, opt.seed + 1);

    // Scrub: the paper's combined mechanism over physical frames.
    CombinedScrub scrub(1e-7, 2, device, 64);

    std::printf("full system: %llu logical lines -> %llu frames, "
                "%s + ECP-%u, Start-Gap psi=64, combined scrub, "
                "%.0f days\n\n",
                static_cast<unsigned long long>(logicalLines),
                static_cast<unsigned long long>(device.lineCount()),
                device.code().name().c_str(), config.ecpEntries,
                days);

    // Drive everything through the discrete-event kernel: demand
    // arrivals chain themselves, scrub wakes reschedule from the
    // policy's own risk calendar.
    const Tick horizon = secondsToTicks(days * 86400.0);
    EventQueue events;
    std::uint64_t gapCopies = 0;

    std::function<void()> demandEvent = [&] {
        const Tick now = events.now();
        const MemRequest req = demand.next(); // Consumed this event.
        device.demandWrite(mapper.physical(currentLine), now);
        if (const auto move = mapper.recordWrite()) {
            // The gap copy relocates a frame's content; modelled as
            // a rewrite of the source frame's payload at the target.
            device.array().line(move->to).writeCodeword(
                device.array().line(move->from).intendedWord(), now,
                device.array().model(), device.array().rng());
            ++gapCopies;
        }
        currentLine = req.line;
        if (req.arrival <= horizon)
            events.schedule(req.arrival, demandEvent);
    };

    std::function<void()> scrubEvent = [&] {
        scrub.wake(device, events.now());
        const Tick next = scrub.nextWake();
        if (next <= horizon)
            events.schedule(next, scrubEvent);
    };

    // Prime both chains.
    {
        const MemRequest first = demand.next();
        currentLine = first.line;
        if (first.arrival <= horizon)
            events.schedule(first.arrival, demandEvent);
        if (scrub.nextWake() <= horizon)
            events.schedule(scrub.nextWake(), scrubEvent);
    }
    events.run(horizon);

    const ScrubMetrics &m = device.metrics();
    std::printf("demand writes        : %llu (+%llu gap copies)\n",
                static_cast<unsigned long long>(m.demandWrites),
                static_cast<unsigned long long>(gapCopies));
    std::printf("scrub checks         : %llu\n",
                static_cast<unsigned long long>(m.linesChecked));
    std::printf("scrub rewrites       : %llu\n",
                static_cast<unsigned long long>(m.scrubRewrites));
    std::printf("cells worn out       : %llu\n",
                static_cast<unsigned long long>(m.cellsWornOut));
    std::printf("uncorrectable lines  : %llu\n",
                static_cast<unsigned long long>(m.scrubUncorrectable));
    std::printf("silent miscorrections: %llu\n",
                static_cast<unsigned long long>(m.miscorrections));

    // Wear profile across physical frames.
    std::vector<std::uint64_t> wear;
    wear.reserve(device.lineCount());
    for (LineIndex frame = 0; frame < device.lineCount(); ++frame)
        wear.push_back(device.array().line(frame).lineWrites());
    std::sort(wear.begin(), wear.end());
    const double mean = static_cast<double>(
        std::accumulate(wear.begin(), wear.end(), 0ull)) /
        static_cast<double>(wear.size());
    std::printf("\nwear/frame: mean %.1f, median %llu, max %llu "
                "(max/mean %.2f — Start-Gap keeps the Zipf hot set "
                "from burning single frames)\n",
                mean,
                static_cast<unsigned long long>(wear[wear.size() / 2]),
                static_cast<unsigned long long>(wear.back()),
                static_cast<double>(wear.back()) / mean);

    // How much hard-error work ECP absorbed.
    std::uint64_t ecpEntriesUsed = 0;
    std::uint64_t framesWithStuck = 0;
    for (LineIndex frame = 0; frame < device.lineCount(); ++frame) {
        ecpEntriesUsed += device.ecpUsed(frame);
        framesWithStuck +=
            device.array().line(frame).stuckCellCount() > 0;
    }
    std::printf("ECP entries in use: %llu across %llu frames with "
                "stuck cells\n",
                static_cast<unsigned long long>(ecpEntriesUsed),
                static_cast<unsigned long long>(framesWithStuck));
    std::printf("scrub energy: %.1f uJ (%s)\n",
                m.energy.total() * 1e-6, m.energy.toString().c_str());
    return 0;
}

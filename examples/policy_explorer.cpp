/**
 * @file
 * Policy explorer: run any scrub configuration from the command
 * line. The full configuration surface of the library in one tool —
 * useful for reproducing individual experiment rows or trying
 * parameter combinations the benches don't sweep.
 *
 * Usage:
 *   policy_explorer [options]
 *     --config FILE              load an INI config (see
 *                                examples/configs/); command-line
 *                                options override it
 *     --policy basic|strong_ecc|light_detect|threshold|adaptive|
 *              combined          (default combined)
 *     --ecc secded|bchN          (default bch8)
 *     --interval-s S             sweep interval (default 3600)
 *     --threshold K              rewrite at K errors (default 6)
 *     --target P                 adaptive UE target (default 1e-7)
 *     --region N                 lines per region (default 64)
 *     --lines N                  sampled lines (default 4096)
 *     --days D                   horizon (default 14)
 *     --write-rate R             writes/line/s (default 1e-5)
 *     --read-rate R              reads/line/s (default 1e-4)
 *     --workload uniform|zipf|streaming|write_burst
 *     --speed-sigma S            intrinsic drift spread (default .25)
 *     --detector parity|crc       light-detector family
 *     --detector-bits N           detector width (default 16)
 *     --ecp N                     ECP entries per line (default 0)
 *     --piggyback T               refresh when a demand read sees
 *                                 >= T errors (default off)
 *     --seed N
 *     --threads N                 worker threads (results are
 *                                 bit-identical at any count)
 *     --telemetry PATH            RAS telemetry JSONL (with [ras])
 *     --checkpoint PATH           snapshot file for crash-safe runs
 *     --checkpoint-every H        periodic snapshot cadence, in
 *                                 simulated hours
 *     --resume PATH               continue from an earlier snapshot
 *
 * Example — the paper's baseline:
 *   policy_explorer --policy basic --ecc secded --interval-s 3600
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <memory>

#include "common/logging.hh"
#include "common/thread_pool.hh"
#include "ras/controlled_scrub.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"
#include "scrub/run_config.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

int
main(int argc, char **argv)
{
    AnalyticRunConfig run;
    run.policy.kind = PolicyKind::Combined;
    run.policy.interval = secondsToTicks(3600.0);
    run.policy.rewriteThreshold = 6;
    run.policy.rewriteHeadroom = 2;
    run.policy.targetLineUeProb = 1e-7;
    run.policy.linesPerRegion = 64;
    run.backend.lines = 4096;
    run.backend.scheme = EccScheme::bch(8);
    run.backend.demand.writesPerLinePerSecond = 1e-5;
    run.backend.demand.readsPerLinePerSecond = 1e-4;
    run.days = 14.0;
    run.threads = 1;

    // First pass: apply a config file, if any, so that explicit
    // command-line options can override its values.
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) != "--config")
            continue;
        run = loadRunConfig(argv[i + 1], run);
        ThreadPool::global().resize(run.threads);
    }

    PolicySpec &spec = run.policy;
    AnalyticConfig &config = run.backend;
    double &days = run.days;
    CliOptions checkpointOpts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto value = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("option %s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--config") {
            ++i; // Already applied in the first pass.
        } else if (arg == "--policy") {
            spec.kind = policyKindFromName(value());
        } else if (arg == "--ecc") {
            config.scheme = eccSchemeFromName(value());
        } else if (arg == "--interval-s") {
            spec.interval = secondsToTicks(std::atof(value()));
        } else if (arg == "--threshold") {
            spec.rewriteThreshold =
                static_cast<unsigned>(std::atoi(value()));
            if (config.scheme.guaranteedT() >= spec.rewriteThreshold) {
                spec.rewriteHeadroom = config.scheme.guaranteedT() -
                    spec.rewriteThreshold;
            }
        } else if (arg == "--target") {
            spec.targetLineUeProb = std::atof(value());
        } else if (arg == "--region") {
            spec.linesPerRegion =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--lines") {
            config.lines =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--days") {
            days = std::atof(value());
        } else if (arg == "--write-rate") {
            config.demand.writesPerLinePerSecond = std::atof(value());
        } else if (arg == "--read-rate") {
            config.demand.readsPerLinePerSecond = std::atof(value());
        } else if (arg == "--workload") {
            const std::string kind = value();
            if (kind == "uniform")
                config.demand.kind = WorkloadKind::Uniform;
            else if (kind == "zipf")
                config.demand.kind = WorkloadKind::Zipf;
            else if (kind == "streaming")
                config.demand.kind = WorkloadKind::Streaming;
            else if (kind == "write_burst")
                config.demand.kind = WorkloadKind::WriteBurst;
            else
                fatal("unknown workload '%s'", kind.c_str());
        } else if (arg == "--speed-sigma") {
            config.device.driftSpeedSigmaLn = std::atof(value());
        } else if (arg == "--detector") {
            const std::string kind = value();
            if (kind == "parity")
                config.detectorKind = DetectorKind::InterleavedParity;
            else if (kind == "crc")
                config.detectorKind = DetectorKind::Crc;
            else
                fatal("unknown detector '%s'", kind.c_str());
        } else if (arg == "--detector-bits") {
            config.detectorParity =
                static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--ecp") {
            config.ecpEntries =
                static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--piggyback") {
            config.demandReadPiggyback = true;
            config.piggybackRewriteThreshold =
                static_cast<unsigned>(std::atoi(value()));
        } else if (arg == "--seed") {
            config.seed =
                static_cast<std::uint64_t>(std::atoll(value()));
        } else if (arg == "--threads") {
            ThreadPool::global().resize(
                static_cast<unsigned>(std::atoi(value())));
        } else if (arg == "--telemetry") {
            run.ras.telemetryPath = value();
        } else if (arg == "--checkpoint") {
            checkpointOpts.checkpointPath = value();
        } else if (arg == "--checkpoint-every") {
            checkpointOpts.checkpointEverySimHours =
                std::atof(value());
            if (checkpointOpts.checkpointEverySimHours <= 0.0)
                fatal("--checkpoint-every needs a positive sim-hour "
                      "cadence");
        } else if (arg == "--resume") {
            checkpointOpts.resumePath = value();
        } else {
            fatal("unknown option '%s' (see header comment)",
                  arg.c_str());
        }
    }

    if (checkpointOpts.checkpointEverySimHours > 0.0 &&
        checkpointOpts.checkpointPath.empty())
        fatal("--checkpoint-every requires --checkpoint PATH");
    CheckpointRuntime::global().configure(checkpointOpts);

    AnalyticBackend device(config);
    std::unique_ptr<ScrubPolicy> policy = makePolicy(spec, device);

    // [ras] in the config (or --telemetry) turns the plain sweep
    // into the closed-loop control plane: runtime interval bounds,
    // per-region telemetry, and the scrub-rate controller.
    std::unique_ptr<TelemetryLogger> telemetry;
    ControlledScrub *controlled = nullptr;
    if (run.ras.enabled) {
        auto *sweep = dynamic_cast<SweepScrubBase *>(policy.get());
        if (sweep == nullptr)
            fatal("ras.enabled requires a sweep policy (basic, "
                  "strong_ecc, light_detect, threshold, preventive)");
        policy.release();
        if (!run.ras.telemetryPath.empty()) {
            telemetry = std::make_unique<TelemetryLogger>(
                run.ras.telemetryPath);
        }
        auto wrapped = std::make_unique<ControlledScrub>(
            std::unique_ptr<SweepScrubBase>(sweep), device, run.ras,
            /*auto_tune=*/true, "policy_explorer", telemetry.get());
        controlled = wrapped.get();
        policy = std::move(wrapped);
    }

    std::printf("policy=%s ecc=%s lines=%llu days=%.1f workload=%s\n",
                policy->name().c_str(),
                config.scheme.name().c_str(),
                static_cast<unsigned long long>(config.lines), days,
                workloadKindName(config.demand.kind));

    const Tick horizon = secondsToTicks(days * 86400.0);
    const std::uint64_t wakes =
        runCheckpointed(device, *policy, horizon);

    const ScrubMetrics &m = device.metrics();
    std::printf("\nwakes=%llu\n%s\n",
                static_cast<unsigned long long>(wakes),
                m.toString().c_str());
    std::printf("%s\n", m.energy.toString().c_str());
    std::printf("\nper line per day: checks=%.2f rewrites=%.4f\n",
                static_cast<double>(m.linesChecked) / config.lines /
                    days,
                static_cast<double>(m.scrubRewrites) / config.lines /
                    days);
    if (controlled != nullptr) {
        std::printf("ras: final interval %.0f s in [%.0f, %.0f]; "
                    "ppr rows left %llu\n",
                    controlled->controlPlane().scrubIntervalS(),
                    run.ras.minIntervalS, run.ras.maxIntervalS,
                    static_cast<unsigned long long>(
                        device.pprTable().remaining()));
    }
    return 0;
}

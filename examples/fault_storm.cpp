/**
 * @file
 * Fault storm: watch the degradation ladder fight for a small
 * cell-accurate device as the fault pressure escalates.
 *
 * Act 1 pelts the array with transient burst reads (every sensing
 * pass corrupted) — widened-margin retries absorb all of it. Act 2
 * freezes a few cells per line — the ECP write-verify pass re-learns
 * them. Act 3 kills whole lines — retirement drains the spare pool,
 * and once it is dry the survivors drop to SLC or surface to the
 * host.
 *
 *   $ ./fault_storm [--seed N] [--threads N]
 */

#include <cstdio>

#include "common/cli.hh"
#include "faults/fault_injector.hh"
#include "scrub/cell_backend.hh"
#include "scrub/sweep_scrub.hh"
#include "snapshot/checkpoint.hh"

using namespace pcmscrub;

namespace {

void
report(const char *act, const CellBackend &device)
{
    const ScrubMetrics &m = device.metrics();
    std::printf("%s\n", act);
    std::printf("  retries %llu (resolved %llu) | ecp repairs %llu | "
                "retired %llu | slc %llu | surfaced %llu\n",
                static_cast<unsigned long long>(m.ueRetries),
                static_cast<unsigned long long>(m.ueRetryResolved),
                static_cast<unsigned long long>(m.ueEcpRepaired),
                static_cast<unsigned long long>(m.ueRetired),
                static_cast<unsigned long long>(m.ueSlcFallbacks),
                static_cast<unsigned long long>(m.ueSurfaced));
    std::printf("  spares left %llu/%llu | capacity lost %llu bits\n\n",
                static_cast<unsigned long long>(m.sparesRemaining),
                static_cast<unsigned long long>(
                    device.sparePool().capacity()),
                static_cast<unsigned long long>(m.capacityLostBits));
}

void
sweepOnce(CellBackend &device, Tick now)
{
    CheckProcedure procedure; // Full decode on every line.
    for (LineIndex line = 0; line < device.lineCount(); ++line)
        scrubCheckLine(device, line, now, procedure);
}

} // namespace

int
main(int argc, char **argv)
{
    const CliOptions opt = parseCliOptions(argc, argv, 2024);
    // This harness's simulation state (its trace cursor and hand-
    // rolled loops) lives outside the snapshot runtime.
    CheckpointRuntime::global().configure(opt, /*supported=*/false);


    // A small cell-accurate device: 64 BCH-4 lines, 16 ECP entries
    // per line, and the full ladder armed with 8 spare lines.
    CellBackendConfig config;
    config.lines = 64;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 16;
    config.seed = opt.seed;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 2;
    config.degradation.spareLines = 8;
    config.degradation.slcFallback = true;
    CellBackend device(config);

    std::printf("fault storm over %llu cell-accurate lines "
                "(BCH-4, 16 ECP entries, 8 spares, SLC fallback)\n\n",
                static_cast<unsigned long long>(device.lineCount()));

    // Act 1: pure transient storm — every sensing pass corrupted by
    // a 12-bit burst, far beyond BCH-4. Nothing sticks: a re-read
    // with widened margins recovers every line.
    FaultCampaignConfig storm;
    storm.burstProbPerRead = 1.0;
    storm.burstBits = 12;
    storm.seed = opt.seed + 1;
    FaultInjector transients(storm);
    device.setFaultInjector(&transients);
    sweepOnce(device, secondsToTicks(3600.0));
    device.setFaultInjector(nullptr);
    report("act 1: transient burst storm (retries absorb)", device);

    // Act 2: a hard-fault wave freezes 8 cells on a third of the
    // lines. Retries cannot help stuck cells; the ladder's
    // write-verify pass points ECP entries at them instead.
    FaultCampaignConfig hard;
    hard.seed = opt.seed + 2;
    FaultInjector freezer(hard);
    for (LineIndex line = 0; line < device.lineCount(); line += 3)
        freezer.freezeCells(device.array().line(line), 8);
    sweepOnce(device, secondsToTicks(2 * 3600.0));
    report("act 2: stuck-cell wave (ECP re-learns)", device);

    // Act 3: total wear-out of a dozen lines — more dead cells than
    // ECP can patch. Retirement rides the spare pool until it runs
    // dry; the rest fall to SLC, and whoever SLC cannot save
    // surfaces to the host.
    for (LineIndex line = 0; line < 12; ++line)
        freezer.freezeCells(device.array().line(line), 60);
    sweepOnce(device, secondsToTicks(3 * 3600.0));
    report("act 3: line wear-out (retire, then SLC)", device);

    std::printf("%s\n", device.metrics().toString().c_str());
    return 0;
}

/**
 * @file
 * The exactness contract of the batched SoA kernels: senseCodeword,
 * marginScanCount, and programCodeword must be bit-identical to a
 * per-cell loop over CellModel — same doubles, same RNG draws — for
 * every cell population the simulator can produce: fresh lines,
 * drifted lines, stuck cells, differential writes that leave cells
 * on mixed drift clocks, SLC-mode lines, and shifted read
 * thresholds.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "pcm/cell.hh"
#include "pcm/kernels.hh"
#include "pcm/line.hh"

namespace pcmscrub {
namespace {

constexpr std::size_t kCodewordBits = 592;

/** Target level of cell `index`, mirroring Line::targetLevel. */
unsigned
referenceLevel(const BitVector &codeword, unsigned index, bool slc)
{
    if (slc)
        return codeword.get(index) ? mlcLevels - 1 : 0;
    const std::size_t bit = static_cast<std::size_t>(index) *
        bitsPerCell;
    std::uint8_t gray = codeword.get(bit) ? 1 : 0;
    if (bit + 1 < codeword.size() && codeword.get(bit + 1))
        gray |= 2;
    return grayToLevel(gray);
}

/** Per-cell CellModel::read loop the sense kernel must reproduce. */
BitVector
referenceSense(const Line &line, const CellModel &model, Tick now,
               double shift)
{
    BitVector word(line.codewordBits());
    if (line.slcMode()) {
        for (unsigned i = 0; i < line.codewordBits(); ++i) {
            word.set(i, model.read(line.cellValue(i), now, shift) >=
                            mlcLevels / 2);
        }
        return word;
    }
    for (unsigned i = 0; i < line.cellCount(); ++i) {
        const std::uint8_t gray =
            levelToGray(model.read(line.cellValue(i), now, shift));
        const std::size_t bit = static_cast<std::size_t>(i) *
            bitsPerCell;
        word.set(bit, gray & 1);
        if (bit + 1 < word.size())
            word.set(bit + 1, (gray >> 1) & 1);
    }
    return word;
}

/** Per-cell CellModel::marginFlagged loop. */
unsigned
referenceMarginScan(const Line &line, const CellModel &model, Tick now)
{
    unsigned flagged = 0;
    for (unsigned i = 0; i < line.cellCount(); ++i)
        flagged += model.marginFlagged(line.cellValue(i), now);
    return flagged;
}

/**
 * Per-cell program loop the batched kernel must reproduce, including
 * the RNG draw order (skipped cells draw nothing).
 */
LineProgramStats
referenceProgram(Line &line, const BitVector &codeword, Tick now,
                 const CellModel &model, Random &rng, bool differential)
{
    LineProgramStats stats;
    for (unsigned i = 0; i < line.cellCount(); ++i) {
        const unsigned level =
            referenceLevel(codeword, i, line.slcMode());
        Cell cell = line.cellValue(i);
        if (cell.stuck)
            continue;
        if (differential && model.read(cell, now) == level)
            continue;
        const ProgramOutcome outcome =
            model.program(cell, level, now, rng);
        line.cell(i).store(cell);
        if (outcome.iterations > 0) {
            ++stats.cellsProgrammed;
            stats.totalIterations += outcome.iterations;
        }
        stats.cellsWornOut += outcome.wornOut;
    }
    return stats;
}

void
expectCellsEqual(const Line &a, const Line &b)
{
    ASSERT_EQ(a.cellCount(), b.cellCount());
    for (unsigned i = 0; i < a.cellCount(); ++i) {
        const Cell ca = a.cellValue(i);
        const Cell cb = b.cellValue(i);
        EXPECT_EQ(ca.logR0, cb.logR0) << "cell " << i;
        EXPECT_EQ(ca.nu, cb.nu) << "cell " << i;
        EXPECT_EQ(ca.nuSpeed, cb.nuSpeed) << "cell " << i;
        EXPECT_EQ(ca.enduranceWrites, cb.enduranceWrites)
            << "cell " << i;
        EXPECT_EQ(ca.writes, cb.writes) << "cell " << i;
        EXPECT_EQ(ca.storedLevel, cb.storedLevel) << "cell " << i;
        EXPECT_EQ(ca.stuck, cb.stuck) << "cell " << i;
        EXPECT_EQ(ca.stuckLevel, cb.stuckLevel) << "cell " << i;
        EXPECT_EQ(ca.writeTick, cb.writeTick) << "cell " << i;
    }
}

/** A written line with some stuck cells, derived from `seed`. */
Line
makeLine(const CellModel &model, std::uint64_t seed, bool slc,
         double stuckFraction, bool differentialSecondWrite)
{
    Random rng(seed);
    Line line(kCodewordBits);
    line.initialize(model, rng);
    if (slc)
        line.setSlcMode(model, rng);
    for (unsigned i = 0; i < line.cellCount(); ++i) {
        if (!rng.bernoulli(stuckFraction))
            continue;
        const auto cell = line.cell(i);
        cell.stuck = 1;
        cell.stuckLevel = static_cast<std::uint8_t>(
            rng.uniformInt(mlcLevels));
    }
    BitVector word(kCodewordBits);
    word.randomize(rng);
    line.writeCodeword(word, secondsToTicks(1.0), model, rng);
    if (differentialSecondWrite) {
        // Flip a few cells' worth of bits and rewrite differentially
        // much later: the untouched cells stay on the old drift
        // clock, so the sense kernel's hoisted log10 sees mixed
        // program ticks.
        BitVector second = word;
        for (unsigned f = 0; f < 40; ++f)
            second.flip(rng.uniformInt(second.size()));
        line.writeCodeword(second, secondsToTicks(7200.0), model, rng,
                           true);
    }
    return line;
}

TEST(SenseKernel, MatchesPerCellReadAcrossPopulations)
{
    const CellModel model{DeviceConfig{}};
    const double shifts[] = {0.0, 0.15};
    const double ages[] = {7201.0, 86400.0, 3e6};
    for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
        for (const bool slc : {false, true}) {
            for (const bool differential : {false, true}) {
                if (slc && differential)
                    continue; // SLC lines are rewritten in full.
                const Line line = makeLine(model, seed, slc, 0.02,
                                           differential);
                for (const double age : ages) {
                    const Tick now = secondsToTicks(age);
                    for (const double shift : shifts) {
                        SCOPED_TRACE("seed " + std::to_string(seed) +
                                     (slc ? " slc" : " mlc") +
                                     " age " + std::to_string(age) +
                                     " shift " + std::to_string(shift));
                        EXPECT_EQ(
                            line.readCodeword(now, model, shift),
                            referenceSense(line, model, now, shift));
                    }
                }
            }
        }
    }
}

TEST(SenseKernel, MarginScanMatchesPerCellLoop)
{
    const CellModel model{DeviceConfig{}};
    for (const std::uint64_t seed : {4ull, 5ull, 6ull}) {
        for (const bool differential : {false, true}) {
            const Line line = makeLine(model, seed, false, 0.05,
                                       differential);
            for (const double age : {7200.5, 90000.0, 5e6}) {
                const Tick now = secondsToTicks(age);
                SCOPED_TRACE("seed " + std::to_string(seed) + " age " +
                             std::to_string(age));
                EXPECT_EQ(line.marginScanCount(now, model),
                          referenceMarginScan(line, model, now));
            }
        }
    }
}

TEST(ProgramKernel, MatchesPerCellLoopIncludingDrawOrder)
{
    const CellModel model{DeviceConfig{}};
    for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
        for (const bool slc : {false, true}) {
            for (const bool differential : {false, true}) {
                SCOPED_TRACE("seed " + std::to_string(seed) +
                             (slc ? " slc" : " mlc") +
                             (differential ? " differential" : " full"));
                // Two identically-seeded lines: one takes the batched
                // kernel (writeCodeword), the other the per-cell
                // reference loop. Any divergence in math or draw
                // order shows up as a field mismatch.
                Line kernel = makeLine(model, seed, slc, 0.03, false);
                Line reference = makeLine(model, seed, slc, 0.03,
                                          false);
                expectCellsEqual(kernel, reference);

                Random rngA(seed * 97 + 1);
                Random rngB(seed * 97 + 1);
                BitVector next(kCodewordBits);
                next.randomize(rngA);
                next.randomize(rngB); // keep both streams aligned
                const Tick now = secondsToTicks(9000.0);
                const LineProgramStats a = kernel.writeCodeword(
                    next, now, model, rngA, differential);
                const LineProgramStats b = referenceProgram(
                    reference, next, now, model, rngB, differential);
                EXPECT_EQ(a.cellsProgrammed, b.cellsProgrammed);
                EXPECT_EQ(a.totalIterations, b.totalIterations);
                EXPECT_EQ(a.cellsWornOut, b.cellsWornOut);
                expectCellsEqual(kernel, reference);
            }
        }
    }
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the deterministic fault-injection engine.
 */

#include <gtest/gtest.h>

#include "faults/fault_injector.hh"
#include "pcm/device_config.hh"

namespace pcmscrub {
namespace {

TEST(FaultInjector, AllRatesZeroIsDisabledAndDrawsNothing)
{
    FaultInjector injector{FaultCampaignConfig{}};
    EXPECT_FALSE(injector.enabled());
    EXPECT_EQ(injector.sampleStuckCells(100.0, 0.5), 0u);
    EXPECT_EQ(injector.sampleReadDisturb(), 0u);
    EXPECT_FALSE(injector.sampleMiscorrection());
    Tick tick = 42;
    EXPECT_FALSE(injector.corruptLastWrite(tick, 1000));
    EXPECT_EQ(tick, 42u);
    BitVector word(64);
    injector.corruptWord(word);
    EXPECT_EQ(word.popcount(), 0u);
    EXPECT_EQ(injector.stats().transientFlips, 0u);
}

TEST(FaultInjector, SameSeedSameCampaign)
{
    FaultCampaignConfig config;
    config.stuckPerWrite = 0.2;
    config.disturbFlipsPerRead = 0.5;
    config.burstProbPerRead = 0.1;
    config.miscorrectionProb = 0.05;
    config.seed = 99;
    FaultInjector a(config);
    FaultInjector b(config);
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.sampleStuckCells(1.0, 0.3),
                  b.sampleStuckCells(1.0, 0.3));
        EXPECT_EQ(a.sampleReadDisturb(), b.sampleReadDisturb());
        EXPECT_EQ(a.sampleMiscorrection(), b.sampleMiscorrection());
    }
    EXPECT_EQ(a.stats().stuckCellsInjected,
              b.stats().stuckCellsInjected);
    EXPECT_EQ(a.stats().transientFlips, b.stats().transientFlips);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultCampaignConfig config;
    config.disturbFlipsPerRead = 1.0;
    config.seed = 1;
    FaultInjector a(config);
    config.seed = 2;
    FaultInjector b(config);
    bool diverged = false;
    for (int i = 0; i < 100 && !diverged; ++i)
        diverged = a.sampleReadDisturb() != b.sampleReadDisturb();
    EXPECT_TRUE(diverged);
}

TEST(FaultInjector, WearCorrelationScalesStuckRate)
{
    FaultCampaignConfig config;
    config.stuckPerWrite = 0.05;
    config.wearCorrelation = 9.0; // 10x rate at full wear.
    config.seed = 7;
    FaultInjector injector(config);
    std::uint64_t fresh = 0;
    std::uint64_t worn = 0;
    for (int i = 0; i < 4000; ++i) {
        fresh += injector.sampleStuckCells(1.0, 0.0);
        worn += injector.sampleStuckCells(1.0, 1.0);
    }
    // Expected ~200 vs ~2000; an enormous margin even for Poisson.
    EXPECT_GT(worn, 4 * fresh);
}

TEST(FaultInjector, CorruptWordFlipsRoughlyTheConfiguredRate)
{
    FaultCampaignConfig config;
    config.disturbFlipsPerRead = 2.0;
    config.seed = 3;
    FaultInjector injector(config);
    const int reads = 2000;
    std::uint64_t flipped = 0;
    for (int i = 0; i < reads; ++i) {
        BitVector word(1024);
        injector.corruptWord(word);
        flipped += word.popcount();
    }
    const double mean = static_cast<double>(flipped) / reads;
    EXPECT_NEAR(mean, 2.0, 0.25);
}

TEST(FaultInjector, BurstsFlipAdjacentBits)
{
    FaultCampaignConfig config;
    config.burstProbPerRead = 1.0; // Every read bursts.
    config.burstBits = 4;
    config.seed = 11;
    FaultInjector injector(config);
    for (int i = 0; i < 50; ++i) {
        BitVector word(256);
        injector.corruptWord(word);
        ASSERT_EQ(word.popcount(), 4u);
        // The four flips are contiguous.
        std::size_t first = 0;
        while (!word.get(first))
            ++first;
        for (std::size_t b = 0; b < 4; ++b)
            EXPECT_TRUE(word.get(first + b));
    }
    EXPECT_EQ(injector.stats().bursts, 50u);
}

TEST(FaultInjector, FreezeCellsSticksTheRequestedCount)
{
    const DeviceConfig device;
    const CellModel model(device);
    Random rng(5);
    Line line(64);
    line.initialize(model, rng);

    FaultCampaignConfig config;
    config.stuckPerWrite = 1.0;
    FaultInjector injector(config);
    injector.freezeCells(line, 10);
    EXPECT_EQ(line.stuckCellCount(), 10u);
    // Freezing more never exceeds the cell count and never spins.
    injector.freezeCells(line, 1000);
    EXPECT_LE(line.stuckCellCount(), line.cellCount());
}

TEST(FaultInjector, FreezeCellsCountsDropsOnSaturatedLine)
{
    const DeviceConfig device;
    const CellModel model(device);
    Random rng(5);
    Line line(64); // 32 MLC cells.
    line.initialize(model, rng);

    FaultCampaignConfig config;
    config.stuckPerWrite = 1.0;
    FaultInjector injector(config);
    // Oversized budget: every cell freezes, the overflow is counted
    // instead of silently vanishing.
    injector.freezeCells(line, 1000);
    EXPECT_EQ(line.stuckCellCount(), line.cellCount());
    EXPECT_EQ(injector.stats().droppedInjections,
              1000u - line.cellCount());
    // A fully frozen line drops the entire budget.
    injector.freezeCells(line, 7);
    EXPECT_EQ(line.stuckCellCount(), line.cellCount());
    EXPECT_EQ(injector.stats().droppedInjections,
              1007u - line.cellCount());
}

TEST(FaultInjector, MetadataCorruptionStaysInRange)
{
    FaultCampaignConfig config;
    config.metadataCorruptionProb = 1.0;
    config.seed = 13;
    FaultInjector injector(config);
    for (int i = 0; i < 100; ++i) {
        Tick tick = 123456;
        EXPECT_TRUE(injector.corruptLastWrite(tick, 1000));
        EXPECT_LE(tick, 1000u);
    }
    EXPECT_EQ(injector.stats().metadataCorruptions, 100u);
}

TEST(FaultInjectorDeath, NegativeRateIsFatal)
{
    FaultCampaignConfig config;
    config.stuckPerWrite = -0.1;
    EXPECT_EXIT(FaultInjector{config},
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(FaultInjectorDeath, BurstWithoutBitsIsFatal)
{
    FaultCampaignConfig config;
    config.burstProbPerRead = 0.5;
    config.burstBits = 0;
    EXPECT_EXIT(FaultInjector{config},
                ::testing::ExitedWithCode(1), "burstBits");
}

} // namespace
} // namespace pcmscrub

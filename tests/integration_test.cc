/**
 * @file
 * Cross-backend integration tests: the analytic backend must agree
 * statistically with the cell-accurate backend running the *same*
 * policy on the *same* device, and full pipelines must hold their
 * invariants end to end.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"
#include "scrub/factory.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);
constexpr Tick kDay = secondsToTicks(86400.0);

TEST(CrossValidation, RewriteRatesAgreeAcrossBackends)
{
    // Same device, same ECC, same policy, no demand traffic: the
    // fraction of lines rewritten per sweep must agree between the
    // closed-form and cell-accurate backends.
    const unsigned lines = 512;
    const Tick horizon = 4 * kDay;

    AnalyticConfig aConfig;
    aConfig.lines = lines;
    aConfig.scheme = EccScheme::bch(8);
    aConfig.demand.writesPerLinePerSecond = 0.0;
    aConfig.demand.readsPerLinePerSecond = 0.0;
    aConfig.seed = 5;
    AnalyticBackend analytic(aConfig);
    StrongEccScrub aPolicy(kDay);
    runScrub(analytic, aPolicy, horizon);

    CellBackendConfig cConfig;
    cConfig.lines = lines;
    cConfig.scheme = EccScheme::bch(8);
    cConfig.seed = 6;
    CellBackend cell(cConfig);
    StrongEccScrub cPolicy(kDay);
    runScrub(cell, cPolicy, horizon);

    const double aRewrites =
        static_cast<double>(analytic.metrics().scrubRewrites);
    const double cRewrites =
        static_cast<double>(cell.metrics().scrubRewrites);
    ASSERT_GT(aRewrites, 20.0);
    ASSERT_GT(cRewrites, 20.0);
    // Statistical agreement within 30%.
    EXPECT_NEAR(aRewrites / cRewrites, 1.0, 0.3);

    // Corrected-error totals must also be on the same scale.
    const double aCorrected =
        static_cast<double>(analytic.metrics().correctedErrors);
    const double cCorrected =
        static_cast<double>(cell.metrics().correctedErrors);
    ASSERT_GT(aCorrected, 0.0);
    EXPECT_NEAR(aCorrected / cCorrected, 1.0, 0.35);
}

TEST(CrossValidation, DecoderGatingRatesAgree)
{
    // Fraction of checks that trigger a full decode should match.
    const unsigned lines = 512;
    const Tick horizon = 2 * kDay;

    AnalyticConfig aConfig;
    aConfig.lines = lines;
    aConfig.scheme = EccScheme::bch(4);
    aConfig.demand.writesPerLinePerSecond = 0.0;
    aConfig.seed = 7;
    AnalyticBackend analytic(aConfig);
    LightDetectScrub aPolicy(kHour * 12);
    runScrub(analytic, aPolicy, horizon);

    CellBackendConfig cConfig;
    cConfig.lines = lines;
    cConfig.scheme = EccScheme::bch(4);
    cConfig.seed = 8;
    CellBackend cell(cConfig);
    LightDetectScrub cPolicy(kHour * 12);
    runScrub(cell, cPolicy, horizon);

    const double aRate =
        static_cast<double>(analytic.metrics().fullDecodes) /
        static_cast<double>(analytic.metrics().linesChecked);
    const double cRate =
        static_cast<double>(cell.metrics().fullDecodes) /
        static_cast<double>(cell.metrics().linesChecked);
    ASSERT_GT(aRate, 0.0);
    ASSERT_GT(cRate, 0.0);
    EXPECT_NEAR(aRate, cRate, 0.5 * std::max(aRate, cRate));
}

TEST(CrossValidation, DemandTrafficAgreesAcrossBackends)
{
    // Lazy Poisson demand (analytic) vs. explicit per-request writes
    // (cell): under the same per-line write rate and a fixed sweep,
    // rewrite rates must agree statistically.
    const unsigned lines = 256;
    const Tick horizon = 3 * kDay;
    const double writeRate = 2e-5; // ~1 write per line per 14 h.

    AnalyticConfig aConfig;
    aConfig.lines = lines;
    aConfig.scheme = EccScheme::bch(8);
    aConfig.demand.writesPerLinePerSecond = writeRate;
    aConfig.demand.readsPerLinePerSecond = 0.0;
    aConfig.seed = 15;
    AnalyticBackend analytic(aConfig);
    StrongEccScrub aPolicy(12 * kHour);
    runScrub(analytic, aPolicy, horizon);

    CellBackendConfig cConfig;
    cConfig.lines = lines;
    cConfig.scheme = EccScheme::bch(8);
    cConfig.seed = 16;
    CellBackend cell(cConfig);
    StrongEccScrub cPolicy(12 * kHour);
    // Drive explicit Poisson writes interleaved with scrub wakes.
    Random rng(17);
    double nextWrite = rng.exponential(writeRate * lines);
    while (true) {
        const Tick scrubAt = cPolicy.nextWake();
        const Tick writeAt = secondsToTicks(nextWrite);
        if (scrubAt > horizon && writeAt > horizon)
            break;
        if (writeAt <= scrubAt) {
            cell.demandWrite(rng.uniformInt(lines), writeAt);
            nextWrite += rng.exponential(writeRate * lines);
        } else {
            cPolicy.wake(cell, scrubAt);
        }
    }

    const double aRewrites =
        static_cast<double>(analytic.metrics().scrubRewrites);
    const double cRewrites =
        static_cast<double>(cell.metrics().scrubRewrites);
    ASSERT_GT(aRewrites, 20.0);
    ASSERT_GT(cRewrites, 20.0);
    EXPECT_NEAR(aRewrites / cRewrites, 1.0, 0.35);
    // Demand-write counts land near the Poisson expectation.
    const double expectedWrites = writeRate * lines *
        ticksToSeconds(horizon);
    EXPECT_NEAR(static_cast<double>(analytic.metrics().demandWrites),
                expectedWrites, 5.0 * std::sqrt(expectedWrites));
    EXPECT_NEAR(static_cast<double>(cell.metrics().demandWrites),
                expectedWrites, 5.0 * std::sqrt(expectedWrites));
}

TEST(Integration, CrcDetectorWorksOnCellBackend)
{
    CellBackendConfig config;
    config.lines = 128;
    config.scheme = EccScheme::bch(8);
    config.detectorKind = DetectorKind::Crc;
    config.detectorParity = 16;
    config.seed = 18;
    CellBackend backend(config);
    // 6 h sweeps: BCH-8's zero-UE regime (P(UE)@6h ~ 3e-5/line), so
    // any uncorrectable here would point at the detector, not drift.
    LightDetectScrub policy(6 * kHour);
    runScrub(backend, policy, 3 * kDay);
    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.lightDetects, m.linesChecked);
    EXPECT_GT(m.fullDecodes, 0u);
    // CRC-16 over a few million checks: essentially no misses.
    EXPECT_EQ(m.detectorMisses, 0u);
    EXPECT_EQ(m.scrubUncorrectable, 0u);
}

TEST(Integration, CombinedPipelineRunsOnCellBackend)
{
    // The full combined mechanism on real cells and real BCH.
    CellBackendConfig config;
    config.lines = 256;
    config.scheme = EccScheme::bch(8);
    config.seed = 9;
    CellBackend backend(config);
    CombinedScrub policy(1e-12, 2, backend, 32);
    runScrub(backend, policy, 6 * kDay);

    const ScrubMetrics &m = backend.metrics();
    EXPECT_GT(m.linesChecked, 0u);
    EXPECT_EQ(m.lightDetects, m.linesChecked);
    EXPECT_EQ(m.scrubUncorrectable, 0u);
    EXPECT_EQ(m.miscorrections, 0u);
    // Ground truth at the end: no line may exceed the ECC budget.
    const Tick end = 6 * kDay;
    for (LineIndex line = 0; line < backend.lineCount(); ++line)
        EXPECT_LE(backend.trueErrors(line, end), 8u) << line;
}

TEST(Integration, SecdedBaselineSuffersOnCellBackend)
{
    // With daily basic scrub and drifting MLC cells, real SECDED
    // hits uncorrectable lines; this is the paper's motivation
    // reproduced on the ground-truth backend.
    CellBackendConfig config;
    config.lines = 256;
    config.scheme = EccScheme::secdedX8();
    config.seed = 10;
    CellBackend backend(config);
    BasicScrub policy(kDay);
    runScrub(backend, policy, 6 * kDay);
    EXPECT_GT(backend.metrics().scrubUncorrectable, 0u);
}

TEST(Integration, MetricsMergeAccumulates)
{
    ScrubMetrics a;
    a.linesChecked = 10;
    a.scrubRewrites = 2;
    a.demandUncorrectable = 0.5;
    a.energy.add(EnergyCategory::Decode, 3.0);
    ScrubMetrics b;
    b.linesChecked = 5;
    b.scrubUncorrectable = 1;
    b.energy.add(EnergyCategory::Decode, 2.0);
    a.merge(b);
    EXPECT_EQ(a.linesChecked, 15u);
    EXPECT_EQ(a.scrubRewrites, 2u);
    EXPECT_EQ(a.scrubUncorrectable, 1u);
    EXPECT_DOUBLE_EQ(a.totalUncorrectable(), 1.5);
    EXPECT_DOUBLE_EQ(a.energy.get(EnergyCategory::Decode), 5.0);
    EXPECT_NE(a.toString().find("checked=15"), std::string::npos);
}

TEST(Integration, DeterministicGivenSeed)
{
    auto runOnce = [](std::uint64_t seed) {
        AnalyticConfig config;
        config.lines = 256;
        config.scheme = EccScheme::bch(8);
        config.demand.writesPerLinePerSecond = 1e-5;
        config.seed = seed;
        AnalyticBackend backend(config);
        CombinedScrub policy(1e-12, 2, backend, 32);
        runScrub(backend, policy, 4 * kDay);
        return backend.metrics();
    };
    const ScrubMetrics a = runOnce(42);
    const ScrubMetrics b = runOnce(42);
    EXPECT_EQ(a.linesChecked, b.linesChecked);
    EXPECT_EQ(a.scrubRewrites, b.scrubRewrites);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
    EXPECT_DOUBLE_EQ(a.energy.total(), b.energy.total());
    const ScrubMetrics c = runOnce(43);
    EXPECT_NE(a.demandWrites, c.demandWrites);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the BCH codec, including parameterized sweeps over the
 * correction strengths the paper's strong-ECC scrub uses.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/bch.hh"

namespace pcmscrub {
namespace {

/** Flip `count` distinct random bits; returns the flipped positions. */
std::set<std::size_t>
injectErrors(BitVector &cw, unsigned count, Random &rng)
{
    std::set<std::size_t> positions;
    while (positions.size() < count) {
        const std::size_t bit = rng.uniformInt(cw.size());
        if (positions.insert(bit).second)
            cw.flip(bit);
    }
    return positions;
}

TEST(Bch, GeometryForLineSizedCode)
{
    const BchCode code(512, 8);
    EXPECT_EQ(code.dataBits(), 512u);
    EXPECT_EQ(code.fieldDegree(), 10u);
    EXPECT_EQ(code.correctableErrors(), 8u);
    EXPECT_EQ(code.checkBits(), 80u); // deg g = m*t for these cosets
    EXPECT_EQ(code.codewordBits(), 592u);
}

TEST(Bch, AutoFieldSelectionMatchesPayload)
{
    EXPECT_EQ(BchCode(512, 1).fieldDegree(), 10u);
    EXPECT_EQ(BchCode(64, 4).fieldDegree(), 7u);
    EXPECT_EQ(BchCode(11, 1).fieldDegree(), 4u);
}

TEST(Bch, CleanCodewordsHaveZeroSyndrome)
{
    const BchCode code(128, 4);
    Random rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        BitVector data(128);
        data.randomize(rng);
        BitVector cw = code.encode(data);
        EXPECT_TRUE(code.check(cw));
        const DecodeResult res = code.decode(cw);
        EXPECT_EQ(res.status, DecodeStatus::Clean);
        EXPECT_FALSE(res.usedFullDecode);
        EXPECT_EQ(code.extractData(cw), data);
    }
}

TEST(Bch, EncodedWordIsDivisibleByGenerator)
{
    const BchCode code(100, 3);
    Random rng(2);
    BitVector data(100);
    data.randomize(rng);
    const BitVector cw = code.encode(data);
    // Reconstruct the codeword polynomial and reduce mod g.
    BinPoly poly;
    const unsigned r = static_cast<unsigned>(code.checkBits());
    for (std::size_t i = 0; i < cw.size(); ++i) {
        if (!cw.get(i))
            continue;
        const unsigned power = i < code.dataBits()
            ? r + static_cast<unsigned>(i)
            : static_cast<unsigned>(i - code.dataBits());
        poly.setCoeff(power, true);
    }
    EXPECT_TRUE(poly.mod(code.generator()).isZero());
}

/** Parameterized over (t, data bits). */
class BchSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, std::size_t>>
{
};

TEST_P(BchSweep, CorrectsUpToTErrors)
{
    const auto [t, k] = GetParam();
    const BchCode code(k, t);
    Random rng(1000 + t);
    for (int trial = 0; trial < 30; ++trial) {
        BitVector data(k);
        data.randomize(rng);
        const BitVector clean = code.encode(data);
        for (unsigned e = 1; e <= t; ++e) {
            BitVector cw = clean;
            injectErrors(cw, e, rng);
            EXPECT_FALSE(code.check(cw));
            const DecodeResult res = code.decode(cw);
            ASSERT_EQ(res.status, DecodeStatus::Corrected)
                << "t=" << t << " e=" << e << " trial=" << trial;
            EXPECT_EQ(res.correctedBits, e);
            EXPECT_TRUE(res.usedFullDecode);
            EXPECT_EQ(cw, clean);
        }
    }
}

TEST_P(BchSweep, BeyondTErrorsNeverSilentlyPassAsClean)
{
    const auto [t, k] = GetParam();
    const BchCode code(k, t);
    Random rng(2000 + t);
    BitVector data(k);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    int detected = 0;
    int miscorrected = 0;
    const int trials = 40;
    for (int trial = 0; trial < trials; ++trial) {
        BitVector cw = clean;
        injectErrors(cw, t + 1, rng);
        const DecodeResult res = code.decode(cw);
        ASSERT_NE(res.status, DecodeStatus::Clean);
        if (res.status == DecodeStatus::Uncorrectable) {
            ++detected;
        } else {
            // Miscorrection: decoder landed on a different codeword.
            ++miscorrected;
            EXPECT_TRUE(code.check(cw));
            EXPECT_NE(cw, clean);
        }
    }
    // Detection should dominate at t+1 errors for these code rates.
    EXPECT_GT(detected, miscorrected);
}

INSTANTIATE_TEST_SUITE_P(
    StrengthAndWidth, BchSweep,
    ::testing::Values(std::make_tuple(1u, std::size_t{512}),
                      std::make_tuple(2u, std::size_t{512}),
                      std::make_tuple(4u, std::size_t{512}),
                      std::make_tuple(6u, std::size_t{512}),
                      std::make_tuple(8u, std::size_t{512}),
                      std::make_tuple(3u, std::size_t{64}),
                      std::make_tuple(5u, std::size_t{256})),
    [](const auto &info) {
        return "t" + std::to_string(std::get<0>(info.param)) + "_k" +
            std::to_string(std::get<1>(info.param));
    });

TEST(Bch, ErrorsInParityRegionAreCorrected)
{
    const BchCode code(512, 4);
    Random rng(3);
    BitVector data(512);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    BitVector cw = clean;
    // Flip bits only inside the check-bit region [512, 552).
    cw.flip(512);
    cw.flip(512 + 20);
    cw.flip(cw.size() - 1);
    const DecodeResult res = code.decode(cw);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(res.correctedBits, 3u);
    EXPECT_EQ(cw, clean);
}

TEST(Bch, AllZeroAndAllOnePayloads)
{
    const BchCode code(512, 8);
    Random rng(4);
    for (const bool fill : {false, true}) {
        BitVector data(512);
        for (std::size_t i = 0; i < data.size(); ++i)
            data.set(i, fill);
        const BitVector clean = code.encode(data);
        BitVector cw = clean;
        injectErrors(cw, 8, rng);
        const DecodeResult res = code.decode(cw);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(cw, clean);
    }
}

TEST(Bch, BurstErrorsWithinTCorrect)
{
    const BchCode code(512, 8);
    Random rng(5);
    BitVector data(512);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    BitVector cw = clean;
    const std::size_t start = 200;
    for (std::size_t i = start; i < start + 8; ++i)
        cw.flip(i);
    const DecodeResult res = code.decode(cw);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(cw, clean);
}

TEST(Bch, ManyErrorsAreFlaggedUncorrectable)
{
    const BchCode code(512, 4);
    Random rng(6);
    BitVector data(512);
    data.randomize(rng);
    BitVector cw = code.encode(data);
    injectErrors(cw, 40, rng);
    const DecodeResult res = code.decode(cw);
    // 40 errors is far outside the decoding sphere; a silent pass
    // would be a decoder bug even though miscorrection is possible.
    EXPECT_NE(res.status, DecodeStatus::Clean);
}

TEST(Bch, ExhaustiveVerificationOfBch15)
{
    // Small enough to verify completely: BCH(15,7,t=2). For several
    // codewords, EVERY 1- and 2-bit error pattern must correct back
    // exactly, and every 3-bit pattern must never pass as clean.
    const BchCode code(7, 2, 4);
    ASSERT_EQ(code.codewordBits(), 15u);
    Random rng(31);
    for (int trial = 0; trial < 8; ++trial) {
        BitVector data(7);
        data.randomize(rng);
        const BitVector clean = code.encode(data);
        for (std::size_t i = 0; i < 15; ++i) {
            BitVector one = clean;
            one.flip(i);
            const DecodeResult r1 = code.decode(one);
            ASSERT_EQ(r1.status, DecodeStatus::Corrected);
            ASSERT_EQ(one, clean) << "single error at " << i;
            for (std::size_t j = i + 1; j < 15; ++j) {
                BitVector two = clean;
                two.flip(i);
                two.flip(j);
                const DecodeResult r2 = code.decode(two);
                ASSERT_EQ(r2.status, DecodeStatus::Corrected)
                    << i << "," << j;
                ASSERT_EQ(two, clean) << i << "," << j;
            }
        }
        // All C(15,3) = 455 triple-error patterns: never clean.
        for (std::size_t i = 0; i < 15; ++i) {
            for (std::size_t j = i + 1; j < 15; ++j) {
                for (std::size_t k = j + 1; k < 15; ++k) {
                    BitVector three = clean;
                    three.flip(i);
                    three.flip(j);
                    three.flip(k);
                    ASSERT_FALSE(code.check(three))
                        << i << "," << j << "," << k;
                    BitVector copy = three;
                    const DecodeResult r3 = code.decode(copy);
                    ASSERT_NE(r3.status, DecodeStatus::Clean);
                }
            }
        }
    }
}

TEST(Bch, ExhaustiveSingleErrorsOnLineSizedCode)
{
    // Every one of the 592 single-bit errors on the line-sized
    // BCH-8 code corrects back exactly.
    const BchCode code(512, 8);
    Random rng(33);
    BitVector data(512);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    for (std::size_t i = 0; i < clean.size(); ++i) {
        BitVector cw = clean;
        cw.flip(i);
        const DecodeResult result = code.decode(cw);
        ASSERT_EQ(result.status, DecodeStatus::Corrected) << i;
        ASSERT_EQ(cw, clean) << i;
    }
}

TEST(BchDeath, OversizedPayloadIsFatal)
{
    // 14 is the largest supported field: 2^14 - 1 = 16383 bits.
    EXPECT_EXIT(BchCode(20000, 2), ::testing::ExitedWithCode(1),
                "no supported BCH field");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the INI-style configuration registry.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "common/config.hh"

namespace pcmscrub {
namespace {

TEST(Config, ParsesSectionsAndTypes)
{
    const ConfigFile config = ConfigFile::parse(R"(
# device knobs
[device]
sigma_log_r = 0.07
endurance_median = 1e8
lines = 4096

[policy]
kind = combined
piggyback = true
; alt comment style
headroom = 0x2
)");
    EXPECT_TRUE(config.has("device.sigma_log_r"));
    EXPECT_FALSE(config.has("device.nonexistent"));
    EXPECT_DOUBLE_EQ(config.getDouble("device.sigma_log_r", 0.0),
                     0.07);
    EXPECT_DOUBLE_EQ(config.getDouble("device.endurance_median", 0.0),
                     1e8);
    EXPECT_EQ(config.getInt("device.lines", 0), 4096u);
    EXPECT_EQ(config.getString("policy.kind", "basic"), "combined");
    EXPECT_TRUE(config.getBool("policy.piggyback", false));
    EXPECT_EQ(config.getInt("policy.headroom", 0), 2u); // 0x prefix.
}

TEST(Config, FallbacksForMissingKeys)
{
    const ConfigFile config = ConfigFile::parse("[a]\nx = 1\n");
    EXPECT_EQ(config.getString("a.y", "def"), "def");
    EXPECT_DOUBLE_EQ(config.getDouble("a.y", 2.5), 2.5);
    EXPECT_EQ(config.getInt("a.y", 7), 7u);
    EXPECT_FALSE(config.getBool("a.y", false));
}

TEST(Config, SectionlessKeysWork)
{
    const ConfigFile config = ConfigFile::parse("answer = 42\n");
    EXPECT_EQ(config.getInt("answer", 0), 42u);
}

TEST(Config, KeysAreSortedAndComplete)
{
    const ConfigFile config =
        ConfigFile::parse("[b]\nz = 1\n[a]\ny = 2\n");
    const auto keys = config.keys();
    ASSERT_EQ(keys.size(), 2u);
    EXPECT_EQ(keys[0], "a.y");
    EXPECT_EQ(keys[1], "b.z");
}

TEST(Config, UnusedKeyTracking)
{
    const ConfigFile config =
        ConfigFile::parse("[s]\nused = 1\ntypo_key = 2\n");
    config.getInt("s.used", 0);
    const auto unused = config.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "s.typo_key");
}

TEST(Config, LoadFromFileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "config_test.ini";
    {
        std::ofstream out(path);
        out << "[run]\ndays = 14\nworkload = zipf\n";
    }
    const ConfigFile config = ConfigFile::load(path);
    EXPECT_EQ(config.getInt("run.days", 0), 14u);
    EXPECT_EQ(config.getString("run.workload", ""), "zipf");
    std::remove(path.c_str());
}

TEST(ConfigDeath, MalformedInputIsFatal)
{
    EXPECT_EXIT(ConfigFile::parse("[unclosed\n"),
                ::testing::ExitedWithCode(1), "malformed section");
    EXPECT_EXIT(ConfigFile::parse("no equals sign\n"),
                ::testing::ExitedWithCode(1), "expected");
    EXPECT_EXIT(ConfigFile::parse("= naked value\n"),
                ::testing::ExitedWithCode(1), "empty key");
    EXPECT_EXIT(ConfigFile::parse("[a]\nx = 1\nx = 2\n"),
                ::testing::ExitedWithCode(1), "duplicate");
    EXPECT_EXIT(ConfigFile::load("/no/such/file.ini"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST(ConfigDeath, BadTypedValuesAreFatal)
{
    const ConfigFile config =
        ConfigFile::parse("[s]\nnum = banana\nflag = maybe\n");
    EXPECT_EXIT(config.getDouble("s.num", 0.0),
                ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(config.getInt("s.num", 0),
                ::testing::ExitedWithCode(1), "not an integer");
    EXPECT_EXIT(config.getBool("s.flag", false),
                ::testing::ExitedWithCode(1), "not a boolean");
}

} // namespace
} // namespace pcmscrub

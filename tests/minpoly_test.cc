/**
 * @file
 * Tests for cyclotomic cosets, minimal polynomials, and BCH
 * generator polynomials against textbook values (Lin & Costello).
 */

#include <gtest/gtest.h>

#include "gf/gf2m.hh"
#include "gf/minpoly.hh"

namespace pcmscrub {
namespace {

TEST(CyclotomicCoset, KnownCosetsModulo15)
{
    const GF2m f(4);
    const auto c1 = cyclotomicCoset(f, 1);
    EXPECT_EQ(c1, (std::vector<std::uint32_t>{1, 2, 4, 8}));
    const auto c3 = cyclotomicCoset(f, 3);
    EXPECT_EQ(c3, (std::vector<std::uint32_t>{3, 6, 9, 12}));
    const auto c5 = cyclotomicCoset(f, 5);
    EXPECT_EQ(c5, (std::vector<std::uint32_t>{5, 10}));
    const auto c7 = cyclotomicCoset(f, 7);
    EXPECT_EQ(c7, (std::vector<std::uint32_t>{7, 11, 13, 14}));
}

TEST(MinimalPolynomial, GF16TextbookTable)
{
    const GF2m f(4);
    // Minimal polynomials over GF(16) (Lin & Costello Table 2.9):
    EXPECT_EQ(minimalPolynomial(f, 1), BinPoly::fromBits(0b10011));
    EXPECT_EQ(minimalPolynomial(f, 3), BinPoly::fromBits(0b11111));
    EXPECT_EQ(minimalPolynomial(f, 5), BinPoly::fromBits(0b111));
    EXPECT_EQ(minimalPolynomial(f, 7), BinPoly::fromBits(0b11001));
}

TEST(MinimalPolynomial, RootsAreExactlyTheCoset)
{
    const GF2m f(6);
    const auto coset = cyclotomicCoset(f, 5);
    const BinPoly mp = minimalPolynomial(f, 5);
    // Evaluate the binary polynomial at every field element.
    unsigned roots = 0;
    for (std::uint32_t e = 0; e < f.order(); ++e) {
        GfElem acc = 0;
        for (int i = mp.degree(); i >= 0; --i) {
            acc = f.mul(acc, f.alphaPow(e));
            if (mp.coeff(static_cast<unsigned>(i)))
                acc ^= 1;
        }
        const bool isRoot = acc == 0;
        const bool inCoset = std::find(coset.begin(), coset.end(), e) !=
            coset.end();
        EXPECT_EQ(isRoot, inCoset) << "exponent " << e;
        roots += isRoot;
    }
    EXPECT_EQ(roots, coset.size());
}

TEST(BchGenerator, ClassicBCH15Codes)
{
    const GF2m f(4);
    // (15, 11) t=1: g = x^4 + x + 1.
    EXPECT_EQ(bchGenerator(f, 1), BinPoly::fromBits(0b10011));
    // (15, 7) t=2: g = x^8 + x^7 + x^6 + x^4 + 1.
    EXPECT_EQ(bchGenerator(f, 2), BinPoly::fromBits(0b111010001));
    // (15, 5) t=3: g = x^10 + x^8 + x^5 + x^4 + x^2 + x + 1.
    EXPECT_EQ(bchGenerator(f, 3), BinPoly::fromBits(0b10100110111));
}

TEST(BchGenerator, DegreeBoundedByMT)
{
    const GF2m f(10);
    for (unsigned t = 1; t <= 8; ++t) {
        const BinPoly g = bchGenerator(f, t);
        EXPECT_LE(g.degree(), static_cast<int>(10 * t)) << "t=" << t;
        EXPECT_GE(g.degree(), static_cast<int>(t)) << "t=" << t;
        // Generator must divide x^n - 1 (i.e. x^n mod g == 1 mod g).
        const BinPoly xn = BinPoly::monomial(f.order()) +
            BinPoly::fromBits(1);
        EXPECT_TRUE(xn.mod(g).isZero()) << "t=" << t;
    }
}

TEST(BchGenerator, GeneratorsNestWithIncreasingT)
{
    // g_t divides g_{t+1}: stronger codes add factors.
    const GF2m f(8);
    BinPoly prev = bchGenerator(f, 1);
    for (unsigned t = 2; t <= 6; ++t) {
        const BinPoly g = bchGenerator(f, t);
        EXPECT_TRUE(g.mod(prev).isZero()) << "t=" << t;
        prev = g;
    }
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for summaries, histograms, and counter groups.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"

namespace pcmscrub {
namespace {

TEST(SummaryStats, EmptyIsSafe)
{
    SummaryStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.ci95(), 0.0);
}

TEST(SummaryStats, HandComputedMoments)
{
    SummaryStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    // Sample variance of the classic example set: 32/7.
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_EQ(s.min(), 2.0);
    EXPECT_EQ(s.max(), 9.0);
}

TEST(SummaryStats, MergeEqualsSequential)
{
    SummaryStats whole;
    SummaryStats partA;
    SummaryStats partB;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0 + i;
        whole.add(x);
        (i < 37 ? partA : partB).add(x);
    }
    partA.merge(partB);
    EXPECT_EQ(partA.count(), whole.count());
    EXPECT_NEAR(partA.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(partA.variance(), whole.variance(), 1e-9);
    EXPECT_EQ(partA.min(), whole.min());
    EXPECT_EQ(partA.max(), whole.max());
}

TEST(SummaryStats, MergeWithEmptySides)
{
    SummaryStats filled;
    filled.add(1.0);
    filled.add(3.0);
    SummaryStats empty;
    filled.merge(empty);
    EXPECT_EQ(filled.count(), 2u);
    EXPECT_DOUBLE_EQ(filled.mean(), 2.0);
    empty.merge(filled);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Histogram, BinningAndEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.add(0.0);
    h.add(0.999);
    h.add(5.0);
    h.add(9.9999);
    h.add(-1.0);  // underflow
    h.add(10.0);  // overflow (right edge exclusive)
    EXPECT_EQ(h.total(), 6u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(5), 1u);
    EXPECT_EQ(h.binCount(9), 1u);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 1u);
}

TEST(Histogram, WeightedAdds)
{
    Histogram h(0.0, 4.0, 4);
    h.add(1.5, 10);
    EXPECT_EQ(h.total(), 10u);
    EXPECT_EQ(h.binCount(1), 10u);
}

TEST(Histogram, QuantileInterpolation)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(i + 0.5);
    EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
    EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
    EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
}

TEST(Histogram, ToStringMentionsPopulatedBins)
{
    Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    const std::string s = h.toString();
    EXPECT_NE(s.find("n=1"), std::string::npos);
}

TEST(CounterGroup, AccumulatesAndReads)
{
    CounterGroup g("scrub");
    g.add("reads");
    g.add("reads", 4);
    g.add("writes", 2);
    EXPECT_EQ(g.get("reads"), 5u);
    EXPECT_EQ(g.get("writes"), 2u);
    EXPECT_EQ(g.get("nonexistent"), 0u);
}

TEST(CounterGroup, ClearResets)
{
    CounterGroup g("x");
    g.add("a", 3);
    g.clear();
    EXPECT_EQ(g.get("a"), 0u);
    EXPECT_TRUE(g.all().empty());
}

TEST(CounterGroup, ToStringIsStableAndNamed)
{
    CounterGroup g("unit");
    g.add("b", 1);
    g.add("a", 2);
    // std::map ordering: alphabetical keys.
    EXPECT_EQ(g.toString(), "unit: a=2 b=1");
}

} // namespace
} // namespace pcmscrub

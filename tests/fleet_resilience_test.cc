/**
 * @file
 * The fleet harness's graceful-degradation contract under chaos:
 * with a third or more of the device tasks killed, corrupted, or
 * starved mid-run, the campaign still finishes, quarantines exactly
 * the intended victims, resumes everything else to completion
 * bit-identically, and accounts for every device in exactly one
 * coverage bucket.
 */

#include <atomic>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "fleet/fleet_runner.hh"

namespace pcmscrub {
namespace {

std::string
freshSnapshotDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "pcmscrub_" + tag;
    // Stale per-device snapshots would be resumed by the next
    // campaign; tests always start from an empty directory.
    for (std::uint64_t i = 0; i < 64; ++i) {
        char name[64];
        std::snprintf(name, sizeof(name), "/device_%llu.snap",
                      static_cast<unsigned long long>(i));
        std::remove((dir + name).c_str());
        std::remove((dir + name + ".1").c_str());
    }
    return dir;
}

FleetConfig
smallCampaign(const std::string &tag, bool chaos)
{
    FleetConfig config;
    config.settings.devices = 12;
    config.settings.retryMax = 3;
    config.settings.quarantineAfter = 3;
    config.settings.backoffBaseMs = 0.0; // No sleeping in tests.
    config.settings.curvePoints = 8;
    config.base.lines = 256;
    config.base.scheme = EccScheme::bch(4);
    config.base.demand.writesPerLinePerSecond = 1e-5;
    config.base.demand.readsPerLinePerSecond = 1e-4;
    config.policy.kind = PolicyKind::Basic;
    config.policy.interval = secondsToTicks(1800.0);
    config.faults.stuckPerWrite = 1e-4;
    config.faults.disturbFlipsPerRead = 1e-3;
    config.days = 2.0;
    config.fleetSeed = 99;
    config.snapshotDir = freshSnapshotDir(tag);
    config.checkpointEveryWakes = 16;
    config.chaos.enabled = chaos;
    // Hit well over the 30% victim floor the contract is stated for.
    config.chaos.victimFraction = 0.75;
    config.chaos.quarantineFraction = 0.35;
    return config;
}

TEST(FleetResilienceTest, ChaosCampaignDegradesGracefully)
{
    const FleetResult clean =
        runFleet(smallCampaign("resilience_clean", false));
    const FleetResult chaotic =
        runFleet(smallCampaign("resilience_chaos", true));
    const std::uint64_t devices = clean.devices.size();
    ASSERT_EQ(chaotic.devices.size(), devices);

    // Chaos off: nothing to recover from.
    EXPECT_EQ(clean.completed, devices);
    EXPECT_EQ(clean.plannedVictims, 0u);
    EXPECT_TRUE(clean.coverageComplete());

    // At least 30% of the tasks were attacked, and every device
    // landed in exactly one coverage bucket.
    EXPECT_GE(chaotic.plannedVictims * 10, devices * 3);
    EXPECT_TRUE(chaotic.coverageComplete());
    EXPECT_EQ(chaotic.completed + chaotic.resumed +
                  chaotic.quarantined + chaotic.skipped,
              devices);
    EXPECT_EQ(chaotic.skipped, 0u);

    const unsigned quarantineAfter =
        smallCampaign("unused", true).settings.quarantineAfter;
    for (std::uint64_t i = 0; i < devices; ++i) {
        const ChaosPlan &plan = chaotic.plans[i];
        const SupervisedResult &device = chaotic.devices[i];
        if (!plan.isVictim()) {
            // Non-victims are untouched: completed first try,
            // bit-identical to the chaos-free campaign.
            EXPECT_EQ(device.outcome, DeviceOutcome::Completed)
                << "device " << i;
            EXPECT_EQ(device.failures, 0u) << "device " << i;
        } else if (plan.injuries >= quarantineAfter) {
            // Intended quarantine victims, and only those, are
            // quarantined — with the chaos reason recorded.
            EXPECT_EQ(device.outcome, DeviceOutcome::Quarantined)
                << "device " << i;
            EXPECT_NE(device.quarantineReason.find("(chaos)"),
                      std::string::npos)
                << device.quarantineReason;
        } else {
            // Recoverable victims resume to completion.
            EXPECT_EQ(device.outcome, DeviceOutcome::Resumed)
                << "device " << i;
            EXPECT_EQ(device.failures, plan.injuries)
                << "device " << i;
            EXPECT_EQ(device.failureReasons.size(), plan.injuries);
        }
        // The heart of the contract: every survivor — victim or not
        // — ends bit-identical to the chaos-free run.
        if (device.succeeded()) {
            ASSERT_TRUE(clean.devices[i].succeeded());
            EXPECT_EQ(device.digest, clean.devices[i].digest)
                << "device " << i << " diverged under chaos";
            EXPECT_EQ(device.wakes, clean.devices[i].wakes);
        }
    }
}

TEST(FleetResilienceTest, ManifestAccountsForEveryDevice)
{
    const FleetConfig config = smallCampaign("manifest", true);
    const FleetResult result = runFleet(config);
    const std::string json = fleetManifestJson(config, result);

    EXPECT_NE(json.find("pcmscrub.fleet_manifest.v1"),
              std::string::npos);
    EXPECT_NE(json.find("\"coverage\""), std::string::npos);
    EXPECT_NE(json.find("\"complete\": true"), std::string::npos);
    EXPECT_NE(json.find("\"device_records\""), std::string::npos);
    EXPECT_NE(json.find("\"survival_curve\""), std::string::npos);
    // Chaos leaves its fingerprints: recorded failure reasons and at
    // least one quarantine reason.
    EXPECT_NE(json.find("(chaos)"), std::string::npos);
    if (result.quarantined > 0)
        EXPECT_NE(json.find("\"quarantine_reason\""),
                  std::string::npos);
    // Survivors carry their result digest.
    EXPECT_NE(json.find("\"digest\""), std::string::npos);
}

TEST(FleetResilienceTest, CancelledDeviceIsSkippedNotLost)
{
    SupervisorConfig config;
    config.device = 3;
    config.horizon = secondsToTicks(86400.0);
    std::atomic<bool> cancel{true};
    const SupervisedResult result = superviseDevice(
        config, ChaosPlan{},
        [] {
            ADD_FAILURE() << "cancelled device must never build";
            return DeviceSim{};
        },
        &cancel);
    EXPECT_EQ(result.outcome, DeviceOutcome::Skipped);
    EXPECT_EQ(result.attempts, 0u);
}

TEST(FleetResilienceTest, GenuineWatchdogDeadlineQuarantines)
{
    // A deadline no attempt can meet: the watchdog trips at the
    // first wake boundary of every attempt, and after
    // quarantineAfter consecutive overruns the device is out.
    FleetConfig fleet = smallCampaign("deadline", false);
    const DeviceSpec spec = sampleDeviceSpec(fleet, 0);

    SupervisorConfig config;
    config.device = 0;
    config.retryMax = 3;
    config.quarantineAfter = 3;
    config.backoffBaseMs = 0.0;
    config.deadlineMs = 1e-9;
    config.horizon = secondsToTicks(fleet.days * 86400.0);
    config.curvePoints = 4;
    const SupervisedResult result = superviseDevice(
        config, ChaosPlan{},
        [&] { return buildDeviceSim(fleet, spec); }, nullptr);
    EXPECT_EQ(result.outcome, DeviceOutcome::Quarantined);
    EXPECT_EQ(result.failures, 3u);
    EXPECT_EQ(result.quarantineReason, "deadline overrun");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Statistical sanity tests for the RNG and its distribution samplers.
 * Tolerances are loose enough to be seed-stable but tight enough to
 * catch implementation mistakes (wrong variance, bias, off-by-one).
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"

namespace pcmscrub {
namespace {

TEST(Random, DeterministicForSameSeed)
{
    Random a(123);
    Random b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, DifferentSeedsDiverge)
{
    Random a(1);
    Random b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Random, UniformMeanAndRange)
{
    Random rng(42);
    SummaryStats stats;
    for (int i = 0; i < 100000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        stats.add(u);
    }
    EXPECT_NEAR(stats.mean(), 0.5, 0.005);
    EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.003);
}

TEST(Random, UniformIntCoversRangeWithoutBias)
{
    Random rng(7);
    const std::uint64_t bound = 10;
    std::vector<int> counts(bound, 0);
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        ++counts[rng.uniformInt(bound)];
    for (std::uint64_t v = 0; v < bound; ++v) {
        EXPECT_NEAR(counts[v], draws / 10.0, 400) << "value " << v;
    }
}

TEST(Random, BernoulliMatchesProbability)
{
    Random rng(11);
    int hits = 0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i)
        hits += rng.bernoulli(0.03);
    EXPECT_NEAR(hits / static_cast<double>(draws), 0.03, 0.002);
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
}

TEST(Random, NormalMomentsAndTails)
{
    Random rng(5);
    SummaryStats stats;
    int beyond3 = 0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i) {
        const double x = rng.normal();
        stats.add(x);
        beyond3 += std::abs(x) > 3.0;
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
    // P(|Z| > 3) = 2.7e-3.
    EXPECT_NEAR(beyond3 / static_cast<double>(draws), 2.7e-3, 6e-4);
}

TEST(Random, NormalZigMomentsAndTails)
{
    Random rng(5);
    SummaryStats stats;
    int beyond3 = 0;
    int tail = 0;
    const int draws = 200000;
    for (int i = 0; i < draws; ++i) {
        const double x = rng.normalZig();
        stats.add(x);
        beyond3 += std::abs(x) > 3.0;
        // The ziggurat's base strip hands |x| > R to a separate tail
        // sampler; make sure that region is actually reachable.
        tail += std::abs(x) > 3.442619855899;
    }
    EXPECT_NEAR(stats.mean(), 0.0, 0.01);
    EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
    EXPECT_NEAR(beyond3 / static_cast<double>(draws), 2.7e-3, 6e-4);
    EXPECT_GT(tail, 0);
}

TEST(Random, NormalZigDeterministicAndSpareFree)
{
    Random a(77);
    Random b(77);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.normalZig(), b.normalZig());
    // Unlike Box-Muller, the ziggurat caches no spare: state capture
    // and restore around a draw replays it exactly.
    const RandomState state = a.state();
    const double expected = a.normalZig();
    b.setState(state);
    EXPECT_EQ(b.normalZig(), expected);
}

TEST(Random, NormalScalesMeanAndStddev)
{
    Random rng(9);
    SummaryStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(rng.normal(10.0, 2.5));
    EXPECT_NEAR(stats.mean(), 10.0, 0.05);
    EXPECT_NEAR(stats.stddev(), 2.5, 0.05);
}

TEST(Random, LogNormalMedian)
{
    Random rng(13);
    std::vector<double> samples;
    for (int i = 0; i < 20001; ++i)
        samples.push_back(rng.logNormal(3.0, 0.8));
    std::nth_element(samples.begin(), samples.begin() + 10000,
                     samples.end());
    // Median of log-normal = e^mu.
    EXPECT_NEAR(samples[10000], std::exp(3.0), std::exp(3.0) * 0.05);
}

TEST(Random, ExponentialMean)
{
    Random rng(17);
    SummaryStats stats;
    for (int i = 0; i < 100000; ++i)
        stats.add(rng.exponential(4.0));
    EXPECT_NEAR(stats.mean(), 0.25, 0.005);
}

TEST(Random, BinomialSmallNpExactPath)
{
    Random rng(21);
    SummaryStats stats;
    const std::uint64_t n = 256;
    const double p = 0.002;
    for (int i = 0; i < 100000; ++i)
        stats.add(static_cast<double>(rng.binomial(n, p)));
    EXPECT_NEAR(stats.mean(), n * p, 0.02);
    EXPECT_NEAR(stats.variance(), n * p * (1 - p), 0.03);
}

TEST(Random, BinomialLargeNpNormalPath)
{
    Random rng(23);
    SummaryStats stats;
    const std::uint64_t n = 10000;
    const double p = 0.4;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.binomial(n, p);
        ASSERT_LE(k, n);
        stats.add(static_cast<double>(k));
    }
    EXPECT_NEAR(stats.mean(), 4000.0, 5.0);
    EXPECT_NEAR(stats.stddev(), std::sqrt(n * p * (1 - p)), 2.0);
}

TEST(Random, BinomialFlippedProbability)
{
    Random rng(29);
    SummaryStats stats;
    for (int i = 0; i < 50000; ++i)
        stats.add(static_cast<double>(rng.binomial(64, 0.97)));
    EXPECT_NEAR(stats.mean(), 64 * 0.97, 0.05);
}

TEST(Random, BinomialDegenerateCases)
{
    Random rng(31);
    EXPECT_EQ(rng.binomial(0, 0.5), 0u);
    EXPECT_EQ(rng.binomial(100, 0.0), 0u);
    EXPECT_EQ(rng.binomial(100, 1.0), 100u);
}

TEST(Random, PoissonMeanAndVariance)
{
    Random rng(37);
    SummaryStats small;
    for (int i = 0; i < 100000; ++i)
        small.add(static_cast<double>(rng.poisson(3.5)));
    EXPECT_NEAR(small.mean(), 3.5, 0.05);
    EXPECT_NEAR(small.variance(), 3.5, 0.1);

    SummaryStats large;
    for (int i = 0; i < 50000; ++i)
        large.add(static_cast<double>(rng.poisson(200.0)));
    EXPECT_NEAR(large.mean(), 200.0, 0.5);
}

TEST(Random, SplitProducesIndependentStream)
{
    Random parent(99);
    Random child = parent.split();
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += parent.next() == child.next();
    EXPECT_LT(same, 2);
}

TEST(Zipf, SkewConcentratesOnLowIndices)
{
    Random rng(43);
    ZipfGenerator zipf(1000, 0.9);
    std::uint64_t hitsTop10 = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i) {
        const std::uint64_t item = zipf.sample(rng);
        ASSERT_LT(item, 1000u);
        hitsTop10 += item < 10;
    }
    // With theta = 0.9 the top-1% of items should take a share far
    // above their uniform 1%.
    EXPECT_GT(hitsTop10, draws / 4);
}

TEST(Zipf, LowThetaApproachesUniform)
{
    Random rng(47);
    ZipfGenerator zipf(100, 0.01);
    std::uint64_t hitsTop10 = 0;
    const int draws = 100000;
    for (int i = 0; i < draws; ++i)
        hitsTop10 += zipf.sample(rng) < 10;
    // Uniform would give 10%; allow skew but it must be near-uniform.
    EXPECT_LT(hitsTop10, draws / 5);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Golden-checkpoint regression tests: the cell backend's checkpoint
 * byte stream after a fixed degradation-heavy campaign is compared
 * against a fixture captured when the v2 container (RAS control
 * plane: PPR remap table + runtime-tunable sweep interval) landed.
 * This proves the refactor (and any later storage change) is
 * byte-compatible — same snapshot layout, same RNG draw order, same
 * floating-point results — not merely "passes its own round-trip".
 *
 * Regenerating the fixture (only when a format change is intended):
 *
 *   PCMSCRUB_REGEN_GOLDEN=1 ./golden_checkpoint_test
 *
 * which rewrites tests/data/golden_checkpoint_v4.bin in the source
 * tree; commit the new fixture together with the format change.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/serialize.hh"
#include "faults/fault_injector.hh"
#include "scrub/cell_backend.hh"
#include "scrub/policy.hh"
#include "scrub/sweep_scrub.hh"

namespace pcmscrub {
namespace {

const char *const kFixturePath =
    PCMSCRUB_GOLDEN_DIR "/golden_checkpoint_v4.bin";

/**
 * The fixture campaign: every serialized feature is exercised —
 * stuck-at faults drive ECP entries, retries, spare retirement, and
 * SLC fallback, so the snapshot covers stuck flags, annexed SLC
 * cells, ECP stores, the spare pool, and degradation metrics.
 */
CellBackendConfig
fixtureConfig()
{
    CellBackendConfig config;
    config.lines = 96;
    config.scheme = EccScheme::bch(4);
    config.seed = 11;
    config.ecpEntries = 2;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 2;
    config.degradation.spareLines = 2;
    config.degradation.slcFallback = true;
    // PPR sits between ECP re-learn and retirement; a low threshold
    // makes the fixture campaign actually consume a spare row.
    config.degradation.pprSpareRows = 2;
    config.degradation.pprUeThreshold = 1;
    return config;
}

FaultCampaignConfig
fixtureCampaign()
{
    FaultCampaignConfig campaign;
    campaign.stuckPerWrite = 0.4;
    campaign.wearCorrelation = 1.0;
    campaign.seed = 99;
    return campaign;
}

/** Run the fixture campaign and return the checkpoint bytes. */
std::vector<std::uint8_t>
runFixtureCampaign()
{
    CellBackend backend(fixtureConfig());
    FaultInjector injector(fixtureCampaign());
    backend.setFaultInjector(&injector);

    BasicScrub policy(secondsToTicks(600.0));
    runScrub(backend, policy, secondsToTicks(4.0 * 3600.0));

    SnapshotSink sink;
    backend.checkpointSave(sink);
    return sink.takeBytes();
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::FILE *file = std::fopen(path.c_str(), "rb");
    if (file == nullptr)
        return {};
    std::fseek(file, 0, SEEK_END);
    const long size = std::ftell(file);
    std::fseek(file, 0, SEEK_SET);
    std::vector<std::uint8_t> bytes(size > 0 ? size : 0);
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), file) !=
            bytes.size()) {
        std::fclose(file);
        return {};
    }
    std::fclose(file);
    return bytes;
}

void
writeFile(const std::string &path,
          const std::vector<std::uint8_t> &bytes)
{
    std::FILE *file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr) << "cannot write " << path;
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file),
              bytes.size());
    ASSERT_EQ(std::fclose(file), 0);
}

bool
regenRequested()
{
    const char *env = std::getenv("PCMSCRUB_REGEN_GOLDEN");
    return env != nullptr && env[0] != '\0' && env[0] != '0';
}

TEST(GoldenCheckpoint, FreshRunMatchesFixture)
{
    const std::vector<std::uint8_t> fresh = runFixtureCampaign();
    ASSERT_FALSE(fresh.empty());

    if (regenRequested()) {
        writeFile(kFixturePath, fresh);
        std::printf("regenerated %s (%zu bytes)\n", kFixturePath,
                    fresh.size());
        return;
    }

    const std::vector<std::uint8_t> golden = readFile(kFixturePath);
    ASSERT_FALSE(golden.empty())
        << "missing fixture " << kFixturePath
        << "; run with PCMSCRUB_REGEN_GOLDEN=1 to create it";
    ASSERT_EQ(fresh.size(), golden.size())
        << "checkpoint size changed against the golden fixture";
    EXPECT_EQ(fresh, golden)
        << "checkpoint bytes diverged from the golden fixture";
}

TEST(GoldenCheckpoint, LoadSaveRoundTripMatchesFixture)
{
    if (regenRequested())
        GTEST_SKIP() << "regen run";
    const std::vector<std::uint8_t> golden = readFile(kFixturePath);
    ASSERT_FALSE(golden.empty())
        << "missing fixture " << kFixturePath
        << "; run with PCMSCRUB_REGEN_GOLDEN=1 to create it";

    // Loading the pre-refactor bytes into a freshly built backend and
    // saving again must reproduce them exactly: every field lands in
    // the same place regardless of how cells are stored in memory.
    CellBackend backend(fixtureConfig());
    FaultInjector injector(fixtureCampaign());
    backend.setFaultInjector(&injector);
    SnapshotSource source(golden.data(), golden.size(),
                          "golden-checkpoint-fixture");
    backend.checkpointLoad(source);

    SnapshotSink sink;
    backend.checkpointSave(sink);
    EXPECT_EQ(sink.bytes(), golden);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for Gray mapping and the cell-level device model.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "pcm/cell.hh"

namespace pcmscrub {
namespace {

TEST(GrayCode, RoundTripAndAdjacency)
{
    for (unsigned level = 0; level < mlcLevels; ++level)
        EXPECT_EQ(grayToLevel(levelToGray(level)), level);
    // Adjacent levels differ in exactly one bit.
    for (unsigned level = 0; level + 1 < mlcLevels; ++level) {
        const unsigned diff = levelToGray(level) ^
            levelToGray(level + 1);
        EXPECT_EQ(__builtin_popcount(diff), 1) << "level " << level;
    }
}

class CellModelTest : public ::testing::Test
{
  protected:
    DeviceConfig config_;
    Random rng_{42};
};

TEST_F(CellModelTest, FreshCellReadsBackItsLevel)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    for (unsigned level = 0; level < mlcLevels; ++level) {
        model.program(cell, level, 0, rng_);
        EXPECT_EQ(model.read(cell, 0), level);
        EXPECT_EQ(cell.storedLevel, level);
    }
}

TEST_F(CellModelTest, ProgramIterationsRespectModel)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    SummaryStats extremes;
    SummaryStats middles;
    for (int i = 0; i < 2000; ++i) {
        const auto o0 = model.program(cell, 0, 0, rng_);
        const auto o3 = model.program(cell, 3, 0, rng_);
        const auto o1 = model.program(cell, 1, 0, rng_);
        EXPECT_EQ(o0.iterations, 1u);
        EXPECT_EQ(o3.iterations, 1u);
        EXPECT_GE(o1.iterations, 1u);
        EXPECT_LE(o1.iterations, config_.maxProgramIterations);
        extremes.add(o0.iterations);
        middles.add(o1.iterations);
    }
    EXPECT_NEAR(middles.mean(), config_.meanIterationsIntermediate,
                0.3);
}

TEST_F(CellModelTest, DriftEventuallyFlipsIntermediateLevel)
{
    // Force a strongly drifting cell and verify the read level
    // climbs across the threshold as time advances.
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    model.program(cell, 2, 0, rng_);
    cell.logR0 = 5.05f; // Near the top of band 2 (threshold 5.5).
    cell.nu = 0.12f;    // Fast drifter.
    EXPECT_EQ(model.read(cell, secondsToTicks(1.0)), 2u);
    // After 10^4 s: logR = 5.05 + 0.12*4 = 5.53 > 5.5.
    EXPECT_EQ(model.read(cell, secondsToTicks(1e4)), 3u);
}

TEST_F(CellModelTest, SenseIsDeterministicBetweenWrites)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    model.program(cell, 1, 0, rng_);
    const Tick at = secondsToTicks(500.0);
    EXPECT_EQ(model.senseLogR(cell, at), model.senseLogR(cell, at));
    EXPECT_EQ(model.read(cell, at), model.read(cell, at));
}

TEST_F(CellModelTest, RewriteResetsDriftClock)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    model.program(cell, 2, 0, rng_);
    cell.logR0 = 5.05f;
    cell.nu = 0.12f;
    const Tick late = secondsToTicks(1e5);
    EXPECT_EQ(model.read(cell, late), 3u); // Drifted out.
    // Reprogram at `late`; drift age restarts from zero.
    model.program(cell, 2, late, rng_);
    cell.logR0 = 5.0f;
    cell.nu = 0.05f;
    EXPECT_EQ(model.read(cell, late + secondsToTicks(1.0)), 2u);
}

TEST_F(CellModelTest, WearOutFreezesCell)
{
    DeviceConfig config = config_;
    config.enduranceMedian = 10.0;
    config.enduranceSigmaLn = 0.01; // Nearly deterministic.
    const CellModel model(config);
    Cell cell;
    model.initialize(cell, rng_);
    unsigned writesUntilStuck = 0;
    for (unsigned i = 0; i < 100 && !cell.stuck; ++i) {
        model.program(cell, i % mlcLevels, 0, rng_);
        ++writesUntilStuck;
    }
    EXPECT_TRUE(cell.stuck);
    EXPECT_NEAR(writesUntilStuck, 10.0, 2.0);

    // Frozen: further programming is ignored.
    const std::uint8_t frozenLevel = cell.stuckLevel;
    const auto outcome = model.program(
        cell, (frozenLevel + 1) % mlcLevels, 0, rng_);
    EXPECT_EQ(outcome.iterations, 0u);
    EXPECT_EQ(model.read(cell, secondsToTicks(1e6)), frozenLevel);
}

TEST_F(CellModelTest, EnduranceScaleShortensLife)
{
    DeviceConfig config = config_;
    config.enduranceMedian = 1e6;
    config.enduranceScale = 1e-5; // Median 10 writes.
    const CellModel model(config);
    SummaryStats lives;
    for (int trial = 0; trial < 200; ++trial) {
        Cell cell;
        model.initialize(cell, rng_);
        lives.add(cell.enduranceWrites);
    }
    EXPECT_NEAR(lives.mean(), 10.0, 2.0);
}

TEST_F(CellModelTest, MarginFlagFiresBeforeError)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    model.program(cell, 2, 0, rng_);
    cell.logR0 = 5.0f;
    cell.nu = 0.1f;
    // logR(t) = 5.0 + 0.1*log10(t). Band = [5.35, 5.5).
    EXPECT_FALSE(model.marginFlagged(cell, secondsToTicks(10.0)));
    // At t = 10^4: logR = 5.4 -> inside the band, still correct.
    const Tick banded = secondsToTicks(1e4);
    EXPECT_EQ(model.read(cell, banded), 2u);
    EXPECT_TRUE(model.marginFlagged(cell, banded));
    // At t = 10^6: logR = 5.6 -> error; margin read no longer flags.
    const Tick failed = secondsToTicks(1e6);
    EXPECT_EQ(model.read(cell, failed), 3u);
    EXPECT_FALSE(model.marginFlagged(cell, failed));
}

TEST_F(CellModelTest, StuckCellsAreNeverMarginFlagged)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    model.program(cell, 1, 0, rng_);
    cell.stuck = true;
    cell.stuckLevel = 1;
    EXPECT_FALSE(model.marginFlagged(cell, secondsToTicks(1e6)));
}

TEST_F(CellModelTest, TopLevelCellNeverDriftErrors)
{
    const CellModel model(config_);
    Cell cell;
    model.initialize(cell, rng_);
    model.program(cell, 3, 0, rng_);
    EXPECT_EQ(model.read(cell, secondsToTicks(1e9)), 3u);
}

} // namespace
} // namespace pcmscrub

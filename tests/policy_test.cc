/**
 * @file
 * Behavioural tests of the scrub policies over the analytic backend.
 */

#include <memory>

#include <gtest/gtest.h>

#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"

namespace pcmscrub {
namespace {

AnalyticConfig
baseConfig(EccScheme scheme, std::uint64_t lines = 2048)
{
    AnalyticConfig config;
    config.lines = lines;
    config.scheme = scheme;
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = 21;
    return config;
}

constexpr Tick kDay = secondsToTicks(86400.0);
constexpr Tick kHour = secondsToTicks(3600.0);

TEST(RunScrub, ExecutesExpectedWakes)
{
    AnalyticBackend backend(baseConfig(EccScheme::bch(8), 128));
    BasicScrub policy(kHour);
    const std::uint64_t wakes = runScrub(backend, policy, 10 * kHour);
    EXPECT_EQ(wakes, 10u);
    EXPECT_EQ(backend.metrics().linesChecked, 10u * 128u);
}

TEST(RunScrub, ZeroHorizonExecutesNothing)
{
    AnalyticBackend backend(baseConfig(EccScheme::bch(8), 16));
    BasicScrub policy(kHour);
    EXPECT_EQ(runScrub(backend, policy, 0), 0u);
    EXPECT_EQ(backend.metrics().linesChecked, 0u);
    EXPECT_EQ(backend.metrics().fullDecodes, 0u);
}

TEST(RunScrub, PolicyScheduledBeyondHorizonNeverWakes)
{
    class NeverWakes : public ScrubPolicy
    {
      public:
        std::string name() const override { return "never"; }
        Tick nextWake() const override { return ~Tick{0}; }
        void wake(ScrubBackend &, Tick) override { ++wakes; }
        unsigned wakes = 0;
    };
    AnalyticBackend backend(baseConfig(EccScheme::bch(8), 16));
    NeverWakes policy;
    EXPECT_EQ(runScrub(backend, policy, 100 * kDay), 0u);
    EXPECT_EQ(policy.wakes, 0u);
    EXPECT_EQ(backend.metrics().linesChecked, 0u);
}

TEST(RunScrubDeath, PolicyThatFailsToRescheduleDies)
{
    class Stalled : public ScrubPolicy
    {
      public:
        std::string name() const override { return "stalled"; }
        Tick nextWake() const override { return 100; }
        void wake(ScrubBackend &, Tick) override {}
    };
    AnalyticBackend backend(baseConfig(EccScheme::bch(8), 16));
    Stalled policy;
    EXPECT_DEATH(runScrub(backend, policy, 1000),
                 "failed to reschedule");
}

TEST(BasicScrubPolicy, DecodesEverythingAndRewritesDirtyLines)
{
    AnalyticBackend backend(baseConfig(EccScheme::secdedX8()));
    BasicScrub policy(kDay);
    runScrub(backend, policy, 5 * kDay);
    const ScrubMetrics &m = backend.metrics();
    // No gating: every visit decodes.
    EXPECT_EQ(m.fullDecodes, m.linesChecked);
    EXPECT_EQ(m.lightDetects, 0u);
    EXPECT_EQ(m.eccChecks, 0u);
    EXPECT_GT(m.scrubRewrites, 0u);
}

TEST(BasicScrubPolicy, ShorterIntervalMeansFewerUncorrectable)
{
    AnalyticBackend slow(baseConfig(EccScheme::secdedX8()));
    BasicScrub slowPolicy(2 * kDay);
    runScrub(slow, slowPolicy, 20 * kDay);

    AnalyticBackend fast(baseConfig(EccScheme::secdedX8()));
    BasicScrub fastPolicy(kHour * 6);
    runScrub(fast, fastPolicy, 20 * kDay);

    EXPECT_LT(fast.metrics().totalUncorrectable(),
              slow.metrics().totalUncorrectable());
    ASSERT_GT(slow.metrics().totalUncorrectable(), 0.0);
}

TEST(StrongEccScrubPolicy, GateSavesDecodes)
{
    AnalyticBackend backend(baseConfig(EccScheme::bch(8)));
    StrongEccScrub policy(kHour);
    runScrub(backend, policy, 5 * kDay);
    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.eccChecks, m.linesChecked);
    // Only the minority of lines dirty within an hour may reach the
    // expensive decoder.
    EXPECT_LT(m.fullDecodes, m.linesChecked / 4);
    EXPECT_GT(m.fullDecodes, 0u);
}

TEST(StrongEccScrubPolicy, CrushesSecdedOnUncorrectable)
{
    // The paper's strong-ECC claim at equal scrub interval.
    AnalyticBackend secded(baseConfig(EccScheme::secdedX8()));
    BasicScrub basic(kDay);
    runScrub(secded, basic, 30 * kDay);

    AnalyticBackend bch(baseConfig(EccScheme::bch(8)));
    StrongEccScrub strong(kDay);
    runScrub(bch, strong, 30 * kDay);

    ASSERT_GT(secded.metrics().totalUncorrectable(), 10.0);
    EXPECT_LT(bch.metrics().totalUncorrectable(),
              secded.metrics().totalUncorrectable() / 20.0);
}

TEST(LightDetectPolicy, DetectorGatesDecodes)
{
    AnalyticBackend backend(baseConfig(EccScheme::bch(8)));
    LightDetectScrub policy(kHour);
    runScrub(backend, policy, 5 * kDay);
    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.lightDetects, m.linesChecked);
    EXPECT_EQ(m.eccChecks, 0u);
    EXPECT_LT(m.fullDecodes, m.linesChecked / 4);
    // Detect energy is far below what always-decoding would cost.
    const DeviceConfig device;
    const double decodeSpent =
        m.energy.get(EnergyCategory::Decode);
    const double alwaysDecode = static_cast<double>(m.linesChecked) *
        device.bchFullDecodeEnergy;
    EXPECT_LT(decodeSpent +
                  m.energy.get(EnergyCategory::Detect),
              alwaysDecode / 3);
}

TEST(ThresholdPolicy, HeadroomSavesRewrites)
{
    AnalyticBackend eager(baseConfig(EccScheme::bch(8)));
    ThresholdScrub eagerPolicy(kDay, 1);
    runScrub(eager, eagerPolicy, 30 * kDay);

    AnalyticBackend lazy(baseConfig(EccScheme::bch(8)));
    ThresholdScrub lazyPolicy(kDay, 6);
    runScrub(lazy, lazyPolicy, 30 * kDay);

    ASSERT_GT(eager.metrics().scrubRewrites, 0u);
    EXPECT_LT(lazy.metrics().scrubRewrites,
              eager.metrics().scrubRewrites / 3);
}

TEST(AdaptivePolicy, ChecksFarLessThanConservativeSweep)
{
    // A designer without the drift model sweeps hourly to be safe;
    // the model-driven adaptive schedule spaces checks to the risk
    // horizon and does a fraction of the work at equal protection.
    AnalyticConfig config = baseConfig(EccScheme::bch(8));
    config.demand.writesPerLinePerSecond = 1e-4; // ~2.8 h period.
    AnalyticBackend sweepBackend(config);
    StrongEccScrub sweep(kHour);
    runScrub(sweepBackend, sweep, 10 * kDay);

    AnalyticBackend adaptiveBackend(config);
    AdaptiveParams params;
    params.targetLineUeProb = 1e-7;
    params.linesPerRegion = 64;
    params.procedure.eccCheckFirst = true;
    AdaptiveScrub adaptive(params, adaptiveBackend);
    runScrub(adaptiveBackend, adaptive, 10 * kDay);

    EXPECT_LT(adaptiveBackend.metrics().linesChecked,
              sweepBackend.metrics().linesChecked / 2);
    // And reliability does not collapse doing so.
    EXPECT_LE(adaptiveBackend.metrics().totalUncorrectable(),
              sweepBackend.metrics().totalUncorrectable() + 3.0);
}

TEST(AdaptivePolicy, SafeAgeGrowsWithEccStrength)
{
    AnalyticBackend weak(baseConfig(EccScheme::bch(2), 64));
    AnalyticBackend strong(baseConfig(EccScheme::bch(8), 64));
    AdaptiveParams params;
    const AdaptiveScrub a(params, weak);
    const AdaptiveScrub b(params, strong);
    EXPECT_GT(b.safeAgeTicks(), a.safeAgeTicks());
}

TEST(CombinedPolicy, BeatsBasicOnEveryHeadlineAxis)
{
    // The abstract's comparison, in miniature: combined (BCH-8 +
    // light detect + threshold + adaptive) vs. DRAM-style basic
    // (SECDED, decode-everything, rewrite-on-any-error) swept
    // hourly — the rate SECDED needs to keep drift UEs tolerable.
    AnalyticBackend basicBackend(baseConfig(EccScheme::secdedX8()));
    BasicScrub basic(kHour);
    runScrub(basicBackend, basic, 30 * kDay);

    AnalyticBackend combinedBackend(baseConfig(EccScheme::bch(8)));
    CombinedScrub combined(1e-7, 2, combinedBackend, 64);
    runScrub(combinedBackend, combined, 30 * kDay);

    const ScrubMetrics &mb = basicBackend.metrics();
    const ScrubMetrics &mc = combinedBackend.metrics();
    ASSERT_GT(mb.totalUncorrectable(), 0.0);
    EXPECT_LT(mc.totalUncorrectable(), mb.totalUncorrectable() / 10.0);
    ASSERT_GT(mb.scrubRewrites, 0u);
    EXPECT_LT(mc.scrubRewrites, mb.scrubRewrites / 5);
    EXPECT_LT(mc.energy.total(), mb.energy.total());
}

TEST(PreventivePolicy, MarginMachineryWorksEndToEnd)
{
    // The preventive sweep exercises the margin-read machinery:
    // clean lines get precision-scanned and guard-band-heavy lines
    // are refreshed before failing. Note the deliberate absence of
    // a "fewer decodes than plain sweep" assertion: under power-law
    // drift, refresh restarts the *steep* early phase of t^nu, so
    // preventive refresh does not pay off at sweep-scale intervals —
    // a negative result bench/tab_preventive documents.
    AnalyticBackend preventive(baseConfig(EccScheme::bch(8)));
    PreventiveScrub policy(kHour * 6, 8);
    EXPECT_EQ(policy.name(), "preventive_8");
    runScrub(preventive, policy, 10 * kDay);

    const ScrubMetrics &mp = preventive.metrics();
    EXPECT_GT(mp.marginScans, 0u);
    EXPECT_GT(mp.preventiveRewrites, 0u);
    EXPECT_LE(mp.preventiveRewrites, mp.scrubRewrites);
    EXPECT_GT(mp.energy.get(EnergyCategory::MarginRead), 0.0);
    // Margin scans only run on visits that did not already rewrite.
    EXPECT_LE(mp.marginScans, mp.linesChecked);
}

TEST(Factory, BuildsEveryFamily)
{
    AnalyticBackend backend(baseConfig(EccScheme::bch(8), 64));
    for (const auto kind :
         {PolicyKind::Basic, PolicyKind::StrongEcc,
          PolicyKind::LightDetect, PolicyKind::Threshold,
          PolicyKind::Preventive, PolicyKind::Adaptive,
          PolicyKind::Combined}) {
        PolicySpec spec;
        spec.kind = kind;
        const auto policy = makePolicy(spec, backend);
        ASSERT_NE(policy, nullptr);
        EXPECT_FALSE(policy->name().empty());
        EXPECT_GT(policy->nextWake(), 0u);
    }
}

TEST(Factory, NameRoundTrip)
{
    for (const auto kind :
         {PolicyKind::Basic, PolicyKind::StrongEcc,
          PolicyKind::LightDetect, PolicyKind::Threshold,
          PolicyKind::Preventive, PolicyKind::Adaptive,
          PolicyKind::Combined}) {
        EXPECT_EQ(policyKindFromName(policyKindName(kind)), kind);
    }
}

TEST(FactoryDeath, UnknownNameIsFatal)
{
    EXPECT_EXIT(policyKindFromName("bogus"),
                ::testing::ExitedWithCode(1), "unknown scrub policy");
}

TEST(PolicyDeath, ZeroIntervalIsFatal)
{
    EXPECT_EXIT(BasicScrub(0), ::testing::ExitedWithCode(1),
                "interval must be positive");
}

} // namespace
} // namespace pcmscrub

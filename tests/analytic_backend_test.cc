/**
 * @file
 * Tests for the analytic backend's lazy physics.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/stats.hh"
#include "scrub/analytic_backend.hh"

namespace pcmscrub {
namespace {

AnalyticConfig
quietConfig(std::uint64_t lines, EccScheme scheme = EccScheme::bch(8))
{
    AnalyticConfig config;
    config.lines = lines;
    config.scheme = scheme;
    config.demand.writesPerLinePerSecond = 0.0; // No demand traffic.
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 11;
    return config;
}

TEST(AnalyticBackend, GeometryFollowsScheme)
{
    const AnalyticBackend bch(quietConfig(16, EccScheme::bch(8)));
    EXPECT_EQ(bch.lineCount(), 16u);
    EXPECT_EQ(bch.cellsPerLine(), (512u + 80u) / 2);
    const AnalyticBackend secded(quietConfig(16, EccScheme::secdedX8()));
    EXPECT_EQ(secded.cellsPerLine(), (512u + 64u) / 2);
}

TEST(AnalyticBackend, FreshLinesAreClean)
{
    AnalyticBackend backend(quietConfig(64));
    for (LineIndex line = 0; line < 64; ++line) {
        EXPECT_TRUE(backend.eccCheckClean(line, secondsToTicks(1.0)));
        EXPECT_TRUE(backend.lightDetectClean(line, secondsToTicks(1.0)));
    }
    EXPECT_EQ(backend.metrics().scrubUncorrectable, 0u);
}

TEST(AnalyticBackend, DriftErrorsMatchClosedForm)
{
    // The sampled error population at age t must track
    // cells * cellErrorProb(t).
    AnalyticBackend backend(quietConfig(4000));
    const double t = 86400.0;
    const Tick at = secondsToTicks(t);
    SummaryStats errors;
    for (LineIndex line = 0; line < 4000; ++line)
        errors.add(backend.trueErrors(line, at));
    const double expected = backend.cellsPerLine() *
        backend.drift().cellErrorProb(t);
    EXPECT_NEAR(errors.mean(), expected,
                5.0 * std::sqrt(expected / 4000.0) + 0.02 * expected);
}

TEST(AnalyticBackend, ErrorsAreMonotoneBetweenWrites)
{
    AnalyticBackend backend(quietConfig(200));
    std::vector<unsigned> before;
    for (LineIndex line = 0; line < 200; ++line)
        before.push_back(backend.trueErrors(line, secondsToTicks(1e4)));
    for (LineIndex line = 0; line < 200; ++line) {
        const unsigned later =
            backend.trueErrors(line, secondsToTicks(1e6));
        EXPECT_GE(later, before[line]) << "line " << line;
    }
}

TEST(AnalyticBackend, RewriteClearsDriftErrors)
{
    AnalyticBackend backend(quietConfig(100));
    const Tick late = secondsToTicks(5e5);
    std::uint64_t dirty = 0;
    for (LineIndex line = 0; line < 100; ++line)
        dirty += backend.trueErrors(line, late) > 0;
    ASSERT_GT(dirty, 0u);
    for (LineIndex line = 0; line < 100; ++line)
        backend.scrubRewrite(line, late);
    for (LineIndex line = 0; line < 100; ++line)
        EXPECT_EQ(backend.trueErrors(line, late), 0u);
    // Shortly after a rewrite, lines stay clean.
    const Tick soon = late + secondsToTicks(10.0);
    for (LineIndex line = 0; line < 100; ++line)
        EXPECT_EQ(backend.trueErrors(line, soon), 0u);
}

TEST(AnalyticBackend, FullDecodeCountsUncorrectable)
{
    AnalyticConfig config = quietConfig(300, EccScheme::bch(1));
    AnalyticBackend backend(config);
    // At one month, expected errors per line >> 1, so BCH-1 fails.
    const Tick month = secondsToTicks(2.6e6);
    std::uint64_t ue = 0;
    for (LineIndex line = 0; line < 300; ++line) {
        const FullDecodeOutcome outcome = backend.fullDecode(line, month);
        if (outcome.uncorrectable) {
            ++ue;
            backend.repairUncorrectable(line, month);
        } else if (outcome.errors > 0) {
            backend.scrubRewrite(line, month);
        }
    }
    EXPECT_GT(ue, 250u); // Nearly every line.
    EXPECT_EQ(backend.metrics().scrubUncorrectable, ue);
    // Repairs and rewrites cleaned everything up.
    for (LineIndex line = 0; line < 300; ++line)
        EXPECT_EQ(backend.trueErrors(line, month), 0u);
}

TEST(AnalyticBackend, LightDetectMissesAreRareAndCounted)
{
    AnalyticConfig config = quietConfig(2000);
    config.detectorParity = 16;
    AnalyticBackend backend(config);
    const Tick at = secondsToTicks(2e5);
    std::uint64_t flaggedDirty = 0;
    for (LineIndex line = 0; line < 2000; ++line) {
        const bool looksClean = backend.lightDetectClean(line, at);
        const unsigned errors = backend.trueErrors(line, at);
        if (!looksClean) {
            ++flaggedDirty;
            EXPECT_GT(errors, 0u) << "false positive on " << line;
        }
    }
    ASSERT_GT(flaggedDirty, 0u);
    // Misses happen but must be far rarer than catches.
    EXPECT_LT(backend.metrics().detectorMisses, flaggedDirty / 10 + 5);
}

TEST(AnalyticBackend, DemandWritesRefreshLines)
{
    AnalyticConfig config = quietConfig(500);
    config.demand.writesPerLinePerSecond = 1e-3; // ~1 write/1000 s.
    AnalyticBackend backend(config);
    // After 10^6 s with millisecond-scale rewrite periods, lines are
    // on average only ~1000 s old: drift errors stay near zero.
    const Tick at = secondsToTicks(1e6);
    std::uint64_t totalErrors = 0;
    for (LineIndex line = 0; line < 500; ++line)
        totalErrors += backend.trueErrors(line, at);
    // Without refreshes the same age would give a large error count.
    AnalyticBackend frozen(quietConfig(500));
    std::uint64_t frozenErrors = 0;
    for (LineIndex line = 0; line < 500; ++line)
        frozenErrors += frozen.trueErrors(line, at);
    EXPECT_LT(totalErrors, frozenErrors / 5);
    EXPECT_GT(backend.metrics().demandWrites, 100000u);
}

TEST(AnalyticBackend, LastFullWriteAdvancesWithDemand)
{
    AnalyticConfig config = quietConfig(50);
    config.demand.writesPerLinePerSecond = 1e-2;
    AnalyticBackend backend(config);
    const Tick at = secondsToTicks(1e5);
    std::uint64_t refreshed = 0;
    for (LineIndex line = 0; line < 50; ++line) {
        const Tick lw = backend.lastFullWrite(line, at);
        EXPECT_LE(lw, at);
        refreshed += lw > 0;
    }
    EXPECT_EQ(refreshed, 50u); // Rate * horizon >> 1.
}

TEST(AnalyticBackend, WearCreatesStuckCellsUnderScaledEndurance)
{
    AnalyticConfig config = quietConfig(100);
    config.device.enduranceMedian = 1e3; // Hugely scaled down.
    config.device.enduranceSigmaLn = 0.3;
    AnalyticBackend backend(config);
    // Hammer rewrites.
    Tick now = secondsToTicks(1.0);
    for (int round = 0; round < 2000; ++round) {
        for (LineIndex line = 0; line < 100; ++line)
            backend.scrubRewrite(line, now);
        now += secondsToTicks(1.0);
    }
    EXPECT_GT(backend.metrics().cellsWornOut, 0u);
    std::uint64_t stuck = 0;
    for (LineIndex line = 0; line < 100; ++line)
        stuck += backend.stuckCells(line);
    EXPECT_EQ(stuck, backend.metrics().cellsWornOut);
    EXPECT_NEAR(backend.lineWrites(7), 2000.0, 1e-9);
}

TEST(AnalyticBackend, EnergyChargedOncePerVisit)
{
    AnalyticBackend backend(quietConfig(10));
    const Tick at = secondsToTicks(100.0);
    backend.lightDetectClean(0, at);
    const double afterFirst =
        backend.metrics().energy.get(EnergyCategory::ArrayRead);
    backend.eccCheckClean(0, at); // Same visit: no second array read.
    EXPECT_DOUBLE_EQ(
        backend.metrics().energy.get(EnergyCategory::ArrayRead),
        afterFirst);
    backend.eccCheckClean(0, at + 1); // New visit: charged again.
    EXPECT_GT(backend.metrics().energy.get(EnergyCategory::ArrayRead),
              afterFirst);
}

TEST(AnalyticBackend, MarginScanFindsBandedPopulation)
{
    AnalyticBackend backend(quietConfig(1000));
    // Pick an age where the margin band is well populated.
    const double t = 3600.0;
    const Tick at = secondsToTicks(t);
    std::uint64_t flagged = 0;
    for (LineIndex line = 0; line < 1000; ++line)
        flagged += backend.marginScan(line, at);
    const double expected = 1000.0 * backend.cellsPerLine() *
        backend.drift().cellMarginFlagProb(t);
    ASSERT_GT(expected, 50.0);
    EXPECT_NEAR(static_cast<double>(flagged), expected,
                6.0 * std::sqrt(expected) + 0.05 * expected);
}

TEST(AnalyticBackend, PiggybackRefreshesHotReadLines)
{
    // With read piggybacking, lines read frequently never keep
    // many errors for long even with no scrub at all.
    AnalyticConfig config = quietConfig(400);
    config.demand.readsPerLinePerSecond = 1e-3; // ~17 min period.
    config.demandReadPiggyback = true;
    config.piggybackRewriteThreshold = 2;
    AnalyticBackend piggy(config);

    AnalyticConfig plainConfig = quietConfig(400);
    AnalyticBackend plain(plainConfig);

    const Tick at = secondsToTicks(5e5);
    std::uint64_t piggyErrors = 0;
    std::uint64_t plainErrors = 0;
    for (LineIndex line = 0; line < 400; ++line) {
        piggyErrors += piggy.trueErrors(line, at);
        plainErrors += plain.trueErrors(line, at);
    }
    ASSERT_GT(plainErrors, 200u);
    EXPECT_LT(piggyErrors, plainErrors / 3);
    EXPECT_GT(piggy.metrics().piggybackRewrites, 0u);
    EXPECT_EQ(piggy.metrics().piggybackRewrites,
              piggy.metrics().scrubRewrites);
}

TEST(AnalyticBackend, PiggybackOffByDefault)
{
    AnalyticConfig config = quietConfig(100);
    config.demand.readsPerLinePerSecond = 1e-3;
    AnalyticBackend backend(config);
    for (LineIndex line = 0; line < 100; ++line)
        backend.trueErrors(line, secondsToTicks(5e5));
    EXPECT_EQ(backend.metrics().piggybackRewrites, 0u);
}

TEST(AnalyticBackend, PiggybackRespectsThreshold)
{
    // A sky-high threshold means reads never trigger refreshes.
    AnalyticConfig config = quietConfig(200);
    config.demand.readsPerLinePerSecond = 1e-3;
    config.demandReadPiggyback = true;
    config.piggybackRewriteThreshold = 1000;
    AnalyticBackend backend(config);
    for (LineIndex line = 0; line < 200; ++line)
        backend.trueErrors(line, secondsToTicks(5e5));
    EXPECT_EQ(backend.metrics().piggybackRewrites, 0u);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for polynomials over GF(2^m).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "gf/gf2m.hh"
#include "gf/gfpoly.hh"

namespace pcmscrub {
namespace {

TEST(GfPoly, ConstantsAndDegree)
{
    EXPECT_TRUE(GfPoly().isZero());
    EXPECT_EQ(GfPoly().degree(), -1);
    const GfPoly c = GfPoly::constant(5);
    EXPECT_EQ(c.degree(), 0);
    EXPECT_EQ(c.coeff(0), 5u);
    EXPECT_TRUE(GfPoly::constant(0).isZero());
}

TEST(GfPoly, AddCancelsInCharacteristicTwo)
{
    GfPoly p;
    p.setCoeff(0, 3);
    p.setCoeff(2, 7);
    EXPECT_TRUE(p.add(p).isZero());
}

TEST(GfPoly, MulAgainstHandComputation)
{
    const GF2m f(4);
    // (x + 1) * (x + 2) = x^2 + 3x + 2 over GF(16).
    GfPoly a;
    a.setCoeff(1, 1);
    a.setCoeff(0, 1);
    GfPoly b;
    b.setCoeff(1, 1);
    b.setCoeff(0, 2);
    const GfPoly prod = a.mul(f, b);
    EXPECT_EQ(prod.degree(), 2);
    EXPECT_EQ(prod.coeff(2), 1u);
    EXPECT_EQ(prod.coeff(1), 3u);
    EXPECT_EQ(prod.coeff(0), 2u);
}

TEST(GfPoly, EvalHornerMatchesDirectSum)
{
    const GF2m f(8);
    Random rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        GfPoly p;
        const unsigned degree =
            static_cast<unsigned>(rng.uniformInt(12));
        for (unsigned i = 0; i <= degree; ++i) {
            p.setCoeff(i,
                       static_cast<GfElem>(rng.uniformInt(f.size())));
        }
        const GfElem x = static_cast<GfElem>(rng.uniformInt(f.size()));
        GfElem direct = 0;
        for (int i = 0; i <= p.degree(); ++i) {
            direct ^= f.mul(p.coeff(static_cast<unsigned>(i)),
                            f.pow(x, static_cast<unsigned>(i)));
        }
        EXPECT_EQ(p.eval(f, x), direct) << "trial " << trial;
    }
}

TEST(GfPoly, RootsOfFactoredPolynomial)
{
    const GF2m f(6);
    // p(x) = (x - a)(x - b) has exactly roots a and b.
    const GfElem a = f.alphaPow(5);
    const GfElem b = f.alphaPow(17);
    GfPoly fa;
    fa.setCoeff(1, 1);
    fa.setCoeff(0, a);
    GfPoly fb;
    fb.setCoeff(1, 1);
    fb.setCoeff(0, b);
    const GfPoly p = fa.mul(f, fb);
    EXPECT_EQ(p.eval(f, a), 0u);
    EXPECT_EQ(p.eval(f, b), 0u);
    unsigned roots = 0;
    for (GfElem x = 0; x < f.size(); ++x)
        roots += p.eval(f, x) == 0;
    EXPECT_EQ(roots, 2u);
}

TEST(GfPoly, ScaleAndShift)
{
    const GF2m f(4);
    GfPoly p;
    p.setCoeff(0, 1);
    p.setCoeff(1, 2);
    const GfPoly scaled = p.scale(f, 3);
    EXPECT_EQ(scaled.coeff(0), 3u);
    EXPECT_EQ(scaled.coeff(1), f.mul(2, 3));
    const GfPoly shifted = p.shift(3);
    EXPECT_EQ(shifted.degree(), 4);
    EXPECT_EQ(shifted.coeff(3), 1u);
    EXPECT_EQ(shifted.coeff(4), 2u);
    EXPECT_TRUE(p.scale(f, 0).isZero());
}

TEST(GfPoly, DerivativeKeepsOddTerms)
{
    // d/dx (c3 x^3 + c2 x^2 + c1 x + c0) = 3 c3 x^2 + 2 c2 x + c1;
    // in characteristic 2 this is c3 x^2 + c1.
    GfPoly p;
    p.setCoeff(3, 9);
    p.setCoeff(2, 7);
    p.setCoeff(1, 4);
    p.setCoeff(0, 2);
    const GfPoly d = p.derivative();
    EXPECT_EQ(d.degree(), 2);
    EXPECT_EQ(d.coeff(2), 9u);
    EXPECT_EQ(d.coeff(1), 0u);
    EXPECT_EQ(d.coeff(0), 4u);
}

TEST(GfPoly, MulDistributesOverAdd)
{
    const GF2m f(5);
    Random rng(77);
    for (int trial = 0; trial < 100; ++trial) {
        GfPoly a, b, c;
        for (unsigned i = 0; i < 6; ++i) {
            a.setCoeff(i, static_cast<GfElem>(rng.uniformInt(f.size())));
            b.setCoeff(i, static_cast<GfElem>(rng.uniformInt(f.size())));
            c.setCoeff(i, static_cast<GfElem>(rng.uniformInt(f.size())));
        }
        const GfPoly lhs = a.mul(f, b.add(c));
        const GfPoly rhs = a.mul(f, b).add(a.mul(f, c));
        EXPECT_TRUE(lhs.equals(rhs)) << "trial " << trial;
    }
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the closed-form drift model, including a Monte-Carlo
 * cross-check against direct sampling of the same physics.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "pcm/drift_model.hh"

namespace pcmscrub {
namespace {

TEST(DriftModel, TopLevelNeverDriftFails)
{
    const DriftModel model{DeviceConfig{}};
    for (const double t : {1.0, 1e3, 1e6, 1e9}) {
        EXPECT_EQ(model.levelErrorProb(mlcLevels - 1, t), 0.0)
            << "t=" << t;
    }
}

TEST(DriftModel, ErrorProbMonotonicInTime)
{
    const DriftModel model{DeviceConfig{}};
    for (unsigned level = 0; level + 1 < mlcLevels; ++level) {
        double prev = model.levelErrorProb(level, 1.0);
        for (double t = 10.0; t <= 1e8; t *= 10.0) {
            const double p = model.levelErrorProb(level, t);
            EXPECT_GE(p, prev) << "level " << level << " t=" << t;
            prev = p;
        }
    }
}

TEST(DriftModel, HigherDriftLevelsFailFirst)
{
    // Among levels with an upper threshold, larger drift exponents
    // (higher levels in the default config) fail more.
    const DriftModel model{DeviceConfig{}};
    const double t = 3600.0;
    EXPECT_GT(model.levelErrorProb(2, t), model.levelErrorProb(1, t));
    EXPECT_GT(model.levelErrorProb(1, t), model.levelErrorProb(0, t));
}

TEST(DriftModel, NoDriftErrorsBeforeT0)
{
    const DriftModel model{DeviceConfig{}};
    // At t <= t0 only programming noise matters; with the default
    // 0.5 log-decade margin at sigma 0.07 that is Q(7.1) ~ 6e-13.
    for (unsigned level = 0; level + 1 < mlcLevels; ++level) {
        EXPECT_LT(model.levelErrorProb(level, 0.5), 1e-11)
            << "level " << level;
    }
}

TEST(DriftModel, CellErrorProbIsLevelAverage)
{
    // cellErrorProb goes through the interpolated lookup table, so
    // agreement with the direct per-level average is to LUT accuracy.
    const DriftModel model{DeviceConfig{}};
    const double t = 86400.0;
    double sum = 0.0;
    for (unsigned l = 0; l < mlcLevels; ++l)
        sum += model.levelErrorProb(l, t);
    const double direct = sum / mlcLevels;
    EXPECT_NEAR(model.cellErrorProb(t), direct, direct * 1e-3);
}

TEST(DriftModel, DefaultConfigProducesPaperScaleRates)
{
    // Sanity-pin the regime the reconstruction targets: at a one-day
    // age the worst intermediate level must be failing at rates that
    // overwhelm SECDED but stay within strong-ECC reach.
    const DriftModel model{DeviceConfig{}};
    const double day = 86400.0;
    const double pWorst = model.levelErrorProb(2, day);
    EXPECT_GT(pWorst, 1e-4);
    EXPECT_LT(pWorst, 1e-1);
    // And within an hour the device is still fairly quiet.
    EXPECT_LT(model.cellErrorProb(60.0), 1e-6);
}

TEST(DriftModel, LineUncorrectableDropsSteeplyWithEccStrength)
{
    const DriftModel model{DeviceConfig{}};
    const double t = 3600.0;
    const unsigned cells = 256;
    double prev = model.lineUncorrectableProb(cells, t, 0);
    for (unsigned t_ecc = 1; t_ecc <= 8; ++t_ecc) {
        const double p = model.lineUncorrectableProb(cells, t, t_ecc);
        EXPECT_LT(p, prev) << "t_ecc=" << t_ecc;
        // Each extra correctable error buys orders of magnitude.
        if (prev > 1e-300) {
            EXPECT_LT(p / prev, 0.5) << "t_ecc=" << t_ecc;
        }
        prev = p;
    }
}

TEST(DriftModel, ExpectedLineErrorsScalesWithCells)
{
    const DriftModel model{DeviceConfig{}};
    const double t = 1e5;
    EXPECT_NEAR(model.expectedLineErrors(512, t),
                2.0 * model.expectedLineErrors(256, t), 1e-12);
}

TEST(DriftModel, TimeToCellErrorProbInvertsForward)
{
    const DriftModel model{DeviceConfig{}};
    for (const double p : {1e-9, 1e-6, 1e-4}) {
        const double t = model.timeToCellErrorProb(p);
        EXPECT_GT(t, 1.0);
        // Forward-evaluating at the returned age stays below target,
        // and slightly later crosses it.
        EXPECT_LE(model.cellErrorProb(t * 0.999), p);
        EXPECT_GE(model.cellErrorProb(t * 1.05), p * 0.9);
    }
}

TEST(DriftModel, TimeToLineUncorrectableGrowsWithEcc)
{
    const DriftModel model{DeviceConfig{}};
    double prev = model.timeToLineUncorrectable(256, 1, 1e-12);
    for (unsigned t_ecc = 2; t_ecc <= 8; ++t_ecc) {
        const double t = model.timeToLineUncorrectable(256, t_ecc, 1e-12);
        EXPECT_GT(t, prev) << "t_ecc=" << t_ecc;
        prev = t;
    }
}

TEST(DriftModel, StrongEccExtendsScrubIntervalByOrdersOfMagnitude)
{
    // The paper's core claim for strong ECC: the safe scrub interval
    // at equal reliability is vastly longer for BCH-8 than SECDED.
    const DriftModel model{DeviceConfig{}};
    const double tSecded = model.timeToLineUncorrectable(256, 1, 1e-9);
    const double tBch8 = model.timeToLineUncorrectable(256, 8, 1e-9);
    EXPECT_GT(tBch8 / tSecded, 10.0);
}

TEST(DriftModel, MarginFlagProbBounds)
{
    const DriftModel model{DeviceConfig{}};
    for (double t = 1.0; t <= 1e8; t *= 100.0) {
        for (unsigned l = 0; l < mlcLevels; ++l) {
            const double p = model.levelMarginFlagProb(l, t);
            EXPECT_GE(p, 0.0) << "l=" << l << " t=" << t;
            EXPECT_LE(p, 1.0);
        }
    }
    EXPECT_EQ(model.levelMarginFlagProb(mlcLevels - 1, 1e6), 0.0);
}

TEST(DriftModel, MarginFlagsPrecedeErrors)
{
    // The guard band must fire well before the error: at moderate
    // ages the flag probability exceeds the error probability.
    const DriftModel model{DeviceConfig{}};
    for (const double t : {600.0, 3600.0, 86400.0}) {
        EXPECT_GT(model.levelMarginFlagProb(2, t),
                  model.levelErrorProb(2, t))
            << "t=" << t;
    }
}

TEST(DriftModel, ClosedFormMatchesMonteCarloSampling)
{
    // Cross-check the analytic p_l(t) against direct sampling of the
    // same physics (normal R0, normal nu, threshold compare).
    const DeviceConfig config;
    const DriftModel model{config};
    Random rng(1234);
    const unsigned level = 2;
    const double t = 43200.0; // Half a day.
    const double u = std::log10(t / config.driftT0Seconds);
    const int draws = 400000;
    int failures = 0;
    for (int i = 0; i < draws; ++i) {
        const double logR0 = rng.normal(config.levelMeanLogR[level],
                                        config.sigmaLogR);
        const double speed =
            rng.logNormal(0.0, config.driftSpeedSigmaLn);
        const double nu = speed * std::max(
            0.0, rng.normal(config.driftMu[level],
                            config.driftSigma(level)));
        failures += logR0 + nu * u > config.readThresholdLogR[level];
    }
    const double empirical = failures / static_cast<double>(draws);
    const double analytic = model.levelErrorProb(level, t);
    EXPECT_NEAR(empirical, analytic, analytic * 0.15 + 2e-5);
}

TEST(DriftModelDeath, InvalidConfigIsFatal)
{
    DeviceConfig config;
    config.sigmaLogR = -1.0;
    EXPECT_EXIT(DriftModel{config}, ::testing::ExitedWithCode(1),
                "sigmaLogR");
    DeviceConfig bad2;
    bad2.readThresholdLogR[0] = 10.0;
    EXPECT_EXIT(DriftModel{bad2}, ::testing::ExitedWithCode(1),
                "threshold");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the analytic endurance model, including agreement with
 * the per-cell sampling in CellModel.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "pcm/cell.hh"
#include "pcm/wear.hh"

namespace pcmscrub {
namespace {

TEST(WearModel, CdfBasics)
{
    DeviceConfig config;
    config.enduranceMedian = 1e8;
    const WearModel model(config);
    EXPECT_EQ(model.failureCdf(0.0), 0.0);
    EXPECT_EQ(model.failureCdf(-5.0), 0.0);
    EXPECT_NEAR(model.failureCdf(1e8), 0.5, 1e-12);
    EXPECT_LT(model.failureCdf(1e7), 0.01);
    EXPECT_GT(model.failureCdf(1e9), 0.99);
}

TEST(WearModel, CdfMonotone)
{
    const WearModel model{DeviceConfig{}};
    double prev = 0.0;
    for (double w = 1e6; w < 1e10; w *= 2.0) {
        const double f = model.failureCdf(w);
        EXPECT_GE(f, prev);
        prev = f;
    }
}

TEST(WearModel, ScaleShiftsMedian)
{
    DeviceConfig config;
    config.enduranceMedian = 1e8;
    config.enduranceScale = 1e-6;
    const WearModel model(config);
    EXPECT_NEAR(model.scaledMedian(), 100.0, 1e-9);
    EXPECT_NEAR(model.failureCdf(100.0), 0.5, 1e-12);
}

TEST(WearModel, ConditionalFailureComposes)
{
    // Surviving w1 then dying by w2, chained through w_mid, must
    // equal the direct conditional: (1-p(a,b))(1-p(b,c)) = 1-p(a,c).
    const WearModel model{DeviceConfig{}};
    const double a = 5e7;
    const double b = 1.2e8;
    const double c = 3e8;
    const double direct = 1.0 - model.conditionalFailure(a, c);
    const double chained = (1.0 - model.conditionalFailure(a, b)) *
        (1.0 - model.conditionalFailure(b, c));
    EXPECT_NEAR(direct, chained, 1e-12);
}

TEST(WearModel, ConditionalEdgeCases)
{
    const WearModel model{DeviceConfig{}};
    EXPECT_EQ(model.conditionalFailure(1e8, 1e8), 0.0);
    EXPECT_NEAR(model.conditionalFailure(0.0, 1e8), 0.5, 1e-12);
    // Deep in the dead zone the conditional saturates at 1.
    EXPECT_NEAR(model.conditionalFailure(1e10, 1e12), 1.0, 1e-6);
}

TEST(WearModel, MatchesCellModelSampling)
{
    // The per-cell endurance draws in CellModel must follow the
    // same distribution the analytic model integrates.
    DeviceConfig config;
    config.enduranceMedian = 1000.0;
    config.enduranceSigmaLn = 0.3;
    const WearModel model(config);
    const CellModel cells(config);
    Random rng(3);
    const int draws = 50000;
    int deadBy800 = 0;
    for (int i = 0; i < draws; ++i) {
        Cell cell;
        cells.initialize(cell, rng);
        deadBy800 += cell.enduranceWrites <= 800.0f;
    }
    const double empirical = deadBy800 / static_cast<double>(draws);
    EXPECT_NEAR(empirical, model.failureCdf(800.0), 0.01);
}

TEST(WearModelDeath, InvalidConfigIsFatal)
{
    DeviceConfig config;
    config.enduranceSigmaLn = 0.0;
    EXPECT_DEATH(WearModel{config}, "spread must be positive");
}

} // namespace
} // namespace pcmscrub

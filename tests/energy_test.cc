/**
 * @file
 * Tests for energy accounting and the per-operation cost model.
 */

#include <gtest/gtest.h>

#include "pcm/energy.hh"

namespace pcmscrub {
namespace {

TEST(EnergyAccount, AccumulatesByCategory)
{
    EnergyAccount account;
    account.add(EnergyCategory::ArrayRead, 10.0);
    account.add(EnergyCategory::ArrayRead, 5.0);
    account.add(EnergyCategory::Decode, 2.5);
    EXPECT_DOUBLE_EQ(account.get(EnergyCategory::ArrayRead), 15.0);
    EXPECT_DOUBLE_EQ(account.get(EnergyCategory::Decode), 2.5);
    EXPECT_DOUBLE_EQ(account.get(EnergyCategory::ArrayWrite), 0.0);
    EXPECT_DOUBLE_EQ(account.total(), 17.5);
}

TEST(EnergyAccount, ClearAndMerge)
{
    EnergyAccount a;
    a.add(EnergyCategory::Detect, 1.0);
    EnergyAccount b;
    b.add(EnergyCategory::Detect, 2.0);
    b.add(EnergyCategory::MarginRead, 4.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.get(EnergyCategory::Detect), 3.0);
    EXPECT_DOUBLE_EQ(a.get(EnergyCategory::MarginRead), 4.0);
    a.clear();
    EXPECT_DOUBLE_EQ(a.total(), 0.0);
}

TEST(EnergyAccount, ToStringContainsCategories)
{
    EnergyAccount account;
    account.add(EnergyCategory::ArrayWrite, 7.0);
    const std::string s = account.toString();
    EXPECT_NE(s.find("array_write=7"), std::string::npos);
    EXPECT_NE(s.find("total=7"), std::string::npos);
}

TEST(EnergyAccountDeath, NegativeEnergyPanics)
{
    EnergyAccount account;
    EXPECT_DEATH(account.add(EnergyCategory::Decode, -1.0),
                 "negative energy");
}

TEST(EnergyModel, CostsScaleWithWork)
{
    DeviceConfig config;
    const EnergyModel model(config);
    EXPECT_DOUBLE_EQ(model.lineRead(256),
                     config.readEnergyPerCell * 256);
    EXPECT_DOUBLE_EQ(model.marginReadExtra(256),
                     config.marginReadExtraPerCell * 256);
    EXPECT_DOUBLE_EQ(model.lineWrite(1000),
                     config.programPulseEnergyPerCell * 1000);
}

TEST(EnergyModel, DecodeCostOrdering)
{
    // The relative ordering is what the light-detection result rests
    // on: detect << syndrome check << full decode.
    const EnergyModel model{DeviceConfig{}};
    EXPECT_LT(model.lightDetect(), model.secdedDecode());
    EXPECT_LT(model.secdedDecode(), model.bchCheck());
    EXPECT_LT(model.bchCheck(), model.bchFullDecode());
}

TEST(EnergyCategoryNames, AllDistinct)
{
    const unsigned n =
        static_cast<unsigned>(EnergyCategory::NumCategories);
    for (unsigned i = 0; i < n; ++i) {
        for (unsigned j = i + 1; j < n; ++j) {
            EXPECT_STRNE(
                energyCategoryName(static_cast<EnergyCategory>(i)),
                energyCategoryName(static_cast<EnergyCategory>(j)));
        }
    }
}

} // namespace
} // namespace pcmscrub

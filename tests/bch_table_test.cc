/**
 * @file
 * The table-driven BCH encoder against an independent bit-serial
 * LFSR oracle: systematic encoding is polynomial division, so a
 * one-bit-at-a-time shift register over the generator — written here
 * from scratch, sharing no code with BchCode — must produce the same
 * parity for every payload. Runs every strength t in 1..8 plus
 * non-byte-aligned payload widths (the encoder's bit-serial head).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/bch.hh"

namespace pcmscrub {
namespace {

/**
 * Bit-serial systematic encode: feed payload bits highest power
 * first through an r-bit LFSR clocked by g(x); the register ends as
 * parity(x) = (x^r * d(x)) mod g(x).
 */
BitVector
lfsrEncode(const BchCode &code, const BitVector &data)
{
    const BinPoly &g = code.generator();
    const unsigned r = static_cast<unsigned>(g.degree());
    std::vector<bool> reg(r, false);
    for (std::size_t i = data.size(); i-- > 0;) {
        const bool feedback = reg[r - 1] ^ data.get(i);
        for (unsigned b = r - 1; b > 0; --b)
            reg[b] = reg[b - 1];
        reg[0] = false;
        if (feedback) {
            for (unsigned b = 0; b < r; ++b)
                reg[b] = reg[b] ^ g.coeff(b);
        }
    }
    BitVector codeword(code.codewordBits());
    for (std::size_t i = 0; i < data.size(); ++i)
        codeword.set(i, data.get(i));
    for (unsigned b = 0; b < r; ++b)
        codeword.set(data.size() + b, reg[b]);
    return codeword;
}

TEST(BchTableEncode, MatchesLfsrOracleForAllStrengths)
{
    Random rng(17);
    for (unsigned t = 1; t <= 8; ++t) {
        const BchCode code(512, t);
        BitVector data(512);
        for (unsigned trial = 0; trial < 20; ++trial) {
            data.randomize(rng);
            SCOPED_TRACE("t=" + std::to_string(t) + " trial " +
                         std::to_string(trial));
            const BitVector encoded = code.encode(data);
            EXPECT_EQ(encoded, lfsrEncode(code, data));
            EXPECT_TRUE(code.check(encoded));
        }
    }
}

TEST(BchTableEncode, MatchesLfsrOracleForOddPayloadWidths)
{
    // Payload widths that are not byte multiples exercise the
    // encoder's bit-serial head before the byte table takes over;
    // tiny widths exercise the small-parity fallback path too.
    Random rng(23);
    for (const std::size_t dataBits : {13ul, 100ul, 501ul, 519ul}) {
        for (const unsigned t : {1u, 3u, 8u}) {
            const BchCode code(dataBits, t);
            BitVector data(dataBits);
            for (unsigned trial = 0; trial < 10; ++trial) {
                data.randomize(rng);
                SCOPED_TRACE("dataBits=" + std::to_string(dataBits) +
                             " t=" + std::to_string(t));
                const BitVector encoded = code.encode(data);
                EXPECT_EQ(encoded, lfsrEncode(code, data));
                EXPECT_TRUE(code.check(encoded));
            }
        }
    }
}

TEST(BchTableEncode, EncodedWordsStillDecodeCleanAndCorrect)
{
    // End-to-end sanity on top of the oracle: table-encoded words
    // decode clean, and survive exactly-t injected errors.
    Random rng(29);
    for (unsigned t = 1; t <= 8; ++t) {
        const BchCode code(512, t);
        BitVector data(512);
        data.randomize(rng);
        BitVector word = code.encode(data);
        EXPECT_EQ(code.decode(word).status, DecodeStatus::Clean);
        std::vector<std::size_t> flipped;
        while (flipped.size() < t) {
            const std::size_t bit = rng.uniformInt(word.size());
            bool seen = false;
            for (const std::size_t f : flipped)
                seen = seen || f == bit;
            if (seen)
                continue;
            flipped.push_back(bit);
            word.flip(bit);
        }
        const DecodeResult result = code.decode(word);
        EXPECT_EQ(result.status, DecodeStatus::Corrected);
        EXPECT_EQ(result.correctedBits, t);
        EXPECT_EQ(word, code.encode(data));
    }
}

} // namespace
} // namespace pcmscrub

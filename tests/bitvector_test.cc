/**
 * @file
 * Unit tests for the packed bit vector.
 */

#include <gtest/gtest.h>

#include "common/bitvector.hh"
#include "common/random.hh"

namespace pcmscrub {
namespace {

TEST(BitVector, StartsAllZero)
{
    BitVector v(130);
    EXPECT_EQ(v.size(), 130u);
    EXPECT_EQ(v.popcount(), 0u);
    for (std::size_t i = 0; i < v.size(); ++i)
        EXPECT_FALSE(v.get(i));
}

TEST(BitVector, SetGetFlipAcrossWordBoundaries)
{
    BitVector v(200);
    for (const std::size_t i : {0ul, 1ul, 63ul, 64ul, 65ul, 127ul,
                                128ul, 199ul}) {
        v.set(i, true);
        EXPECT_TRUE(v.get(i)) << "bit " << i;
        v.flip(i);
        EXPECT_FALSE(v.get(i)) << "bit " << i;
        v.flip(i);
        EXPECT_TRUE(v.get(i)) << "bit " << i;
    }
    EXPECT_EQ(v.popcount(), 8u);
    v.clear();
    EXPECT_EQ(v.popcount(), 0u);
    EXPECT_EQ(v.size(), 200u);
}

TEST(BitVector, XorAndHammingDistance)
{
    BitVector a(100);
    BitVector b(100);
    a.set(3, true);
    a.set(64, true);
    b.set(64, true);
    b.set(99, true);
    EXPECT_EQ(a.hammingDistance(b), 2u);
    a ^= b;
    EXPECT_TRUE(a.get(3));
    EXPECT_FALSE(a.get(64));
    EXPECT_TRUE(a.get(99));
    EXPECT_EQ(a.popcount(), 2u);
}

TEST(BitVector, ExtractDepositRoundTrip)
{
    BitVector v(160);
    v.deposit(60, 10, 0x2ABu); // Crosses the word-0/word-1 boundary.
    EXPECT_EQ(v.extract(60, 10), 0x2ABu);
    v.deposit(0, 64, 0xDEADBEEFCAFEF00DULL);
    EXPECT_EQ(v.extract(0, 64), 0xDEADBEEFCAFEF00DULL);
    // The earlier deposit overlapped [60,64); re-check the upper part.
    EXPECT_EQ(v.extract(64, 6), 0x2ABu >> 4);
}

TEST(BitVector, DepositMasksValueToWidth)
{
    BitVector v(32);
    v.deposit(4, 4, 0xFFu); // Only the low 4 bits may land.
    EXPECT_EQ(v.extract(4, 4), 0xFu);
    EXPECT_FALSE(v.get(8));
    EXPECT_FALSE(v.get(3));
}

TEST(BitVector, EqualityIncludesLength)
{
    BitVector a(10);
    BitVector b(10);
    EXPECT_EQ(a, b);
    b.set(7, true);
    EXPECT_NE(a, b);
    b.set(7, false);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, BitVector(11));
}

TEST(BitVector, RandomizeKeepsTailClear)
{
    Random rng(7);
    BitVector v(70); // 6 tail bits in the second word must stay zero.
    v.randomize(rng);
    std::size_t manual = 0;
    for (std::size_t i = 0; i < v.size(); ++i)
        manual += v.get(i);
    EXPECT_EQ(manual, v.popcount());
    // Roughly half the bits should be set; bound loosely.
    EXPECT_GT(v.popcount(), 15u);
    EXPECT_LT(v.popcount(), 55u);
}

TEST(BitVector, ToStringShowsBitZeroFirst)
{
    BitVector v(4);
    v.set(0, true);
    v.set(3, true);
    EXPECT_EQ(v.toString(), "1001");
}

TEST(BitVector, XorWithMatchesOperator)
{
    Random rng(11);
    BitVector a(197);
    BitVector b(197);
    a.randomize(rng);
    b.randomize(rng);
    BitVector viaOperator = a;
    viaOperator ^= b;
    BitVector viaHelper = a;
    viaHelper.xorWith(b);
    EXPECT_EQ(viaHelper, viaOperator);
}

TEST(BitVector, CountDifferencesMatchesBitLoop)
{
    Random rng(12);
    for (const std::size_t size : {1ul, 63ul, 64ul, 65ul, 592ul}) {
        BitVector a(size);
        BitVector b(size);
        a.randomize(rng);
        b.randomize(rng);
        std::size_t manual = 0;
        for (std::size_t i = 0; i < size; ++i)
            manual += a.get(i) != b.get(i);
        EXPECT_EQ(a.countDifferences(b), manual) << "size " << size;
        EXPECT_EQ(a.countDifferences(a), 0u);
    }
}

TEST(BitVector, PopcountWordSumsToPopcount)
{
    Random rng(13);
    BitVector v(300);
    v.randomize(rng);
    std::size_t total = 0;
    for (std::size_t w = 0; w < v.words().size(); ++w)
        total += v.popcountWord(w);
    EXPECT_EQ(total, v.popcount());
    BitVector single(70);
    single.set(64, true);
    EXPECT_EQ(single.popcountWord(0), 0u);
    EXPECT_EQ(single.popcountWord(1), 1u);
}

TEST(BitVector, CopyFromMatchesBitLoop)
{
    Random rng(14);
    // Aligned, misaligned, and cross-word spans, including a span
    // wider than one word with both endpoints off word boundaries.
    struct Span { std::size_t srcLo, dstLo, n; };
    const Span spans[] = {
        {0, 0, 64}, {0, 64, 64}, {3, 0, 61}, {0, 3, 61},
        {7, 13, 150}, {61, 1, 5}, {60, 124, 70}, {0, 0, 1},
    };
    for (const Span &span : spans) {
        BitVector src(256);
        src.randomize(rng);
        BitVector expect(256);
        expect.randomize(rng);
        BitVector dst = expect;
        for (std::size_t i = 0; i < span.n; ++i)
            expect.set(span.dstLo + i, src.get(span.srcLo + i));
        dst.copyFrom(src, span.srcLo, span.dstLo, span.n);
        EXPECT_EQ(dst, expect)
            << "src " << span.srcLo << " dst " << span.dstLo
            << " n " << span.n;
    }
}

} // namespace
} // namespace pcmscrub

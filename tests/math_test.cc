/**
 * @file
 * Tests for the Gaussian tail and binomial helpers that the drift
 * model and Monte-Carlo engine are built on.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/math.hh"

namespace pcmscrub {
namespace {

TEST(QFunc, KnownValues)
{
    EXPECT_NEAR(qfunc(0.0), 0.5, 1e-15);
    EXPECT_NEAR(qfunc(1.0), 0.15865525393145707, 1e-12);
    EXPECT_NEAR(qfunc(3.0), 1.3498980316300946e-3, 1e-12);
    EXPECT_NEAR(qfunc(6.0), 9.865876450376946e-10, 1e-18);
}

TEST(QFunc, SymmetricAroundZero)
{
    for (const double z : {0.1, 0.7, 1.9, 3.3}) {
        EXPECT_NEAR(qfunc(z) + qfunc(-z), 1.0, 1e-14) << "z=" << z;
    }
}

TEST(QFunc, DeepTailStaysPositiveAndMonotonic)
{
    double prev = 1.0;
    for (double z = 0.0; z <= 37.0; z += 0.5) {
        const double q = qfunc(z);
        EXPECT_GT(q, 0.0) << "z=" << z;
        EXPECT_LT(q, prev) << "z=" << z;
        prev = q;
    }
}

TEST(QFuncInv, RoundTripsAcrossMagnitudes)
{
    for (const double p : {0.4, 0.1, 1e-3, 1e-6, 1e-9, 1e-12}) {
        const double z = qfuncInv(p);
        EXPECT_NEAR(qfunc(z), p, p * 1e-6) << "p=" << p;
    }
}

TEST(QFuncInv, CenterAndSignBehaviour)
{
    EXPECT_NEAR(qfuncInv(0.5), 0.0, 1e-12);
    EXPECT_LT(qfuncInv(0.9), 0.0);
    EXPECT_GT(qfuncInv(0.1), 0.0);
}

TEST(BinomialPmf, MatchesHandComputedValues)
{
    // Binomial(4, 0.5): pmf = {1,4,6,4,1}/16.
    EXPECT_NEAR(binomialPmf(4, 0.5, 0), 1.0 / 16, 1e-12);
    EXPECT_NEAR(binomialPmf(4, 0.5, 2), 6.0 / 16, 1e-12);
    EXPECT_NEAR(binomialPmf(4, 0.5, 4), 1.0 / 16, 1e-12);
    EXPECT_EQ(binomialPmf(4, 0.5, 5), 0.0);
}

TEST(BinomialPmf, DegenerateProbabilities)
{
    EXPECT_EQ(binomialPmf(10, 0.0, 0), 1.0);
    EXPECT_EQ(binomialPmf(10, 0.0, 1), 0.0);
    EXPECT_EQ(binomialPmf(10, 1.0, 10), 1.0);
    EXPECT_EQ(binomialPmf(10, 1.0, 9), 0.0);
}

TEST(BinomialPmf, SumsToOne)
{
    const unsigned n = 30;
    const double p = 0.17;
    double sum = 0.0;
    for (unsigned k = 0; k <= n; ++k)
        sum += binomialPmf(n, p, k);
    EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(BinomialTail, AgreesWithDirectSum)
{
    const unsigned n = 256;
    const double p = 1e-3;
    for (unsigned k = 0; k < 6; ++k) {
        double direct = 0.0;
        for (unsigned j = k + 1; j <= 20; ++j)
            direct += binomialPmf(n, p, j);
        EXPECT_NEAR(binomialTailAbove(n, p, k), direct,
                    direct * 1e-9 + 1e-30) << "k=" << k;
    }
}

TEST(BinomialTail, TinyProbabilitiesStayMeaningful)
{
    // The uncorrectable-error question: P(> 8 errors) with p = 1e-6
    // over 256 cells must come out ~C(256,9) p^9, not zero.
    const double tail = binomialTailAbove(256, 1e-6, 8);
    EXPECT_GT(tail, 0.0);
    EXPECT_LT(tail, 1e-35);
    const double firstTerm = binomialPmf(256, 1e-6, 9);
    EXPECT_NEAR(tail, firstTerm, firstTerm * 1e-3);
}

TEST(BinomialTail, EdgeCases)
{
    EXPECT_EQ(binomialTailAbove(10, 0.0, 0), 0.0);
    EXPECT_EQ(binomialTailAbove(10, 1.0, 9), 1.0);
    EXPECT_EQ(binomialTailAbove(10, 1.0, 10), 0.0);
    EXPECT_EQ(binomialTailAbove(10, 0.3, 10), 0.0);
    EXPECT_NEAR(binomialTailAbove(1, 0.25, 0), 0.25, 1e-12);
}

TEST(Log1mexp, AccurateNearZeroAndFar)
{
    // x = -1e-10: log(1 - e^x) ~ log(1e-10).
    EXPECT_NEAR(log1mexp(-1e-10), std::log(1e-10), 1e-6);
    EXPECT_NEAR(log1mexp(-50.0), -std::exp(-50.0), 1e-30);
    EXPECT_NEAR(std::exp(log1mexp(-0.5)), 1.0 - std::exp(-0.5), 1e-12);
}

TEST(BinomialTail, MonotonicInPAndK)
{
    EXPECT_LT(binomialTailAbove(64, 1e-4, 2),
              binomialTailAbove(64, 1e-3, 2));
    EXPECT_LT(binomialTailAbove(64, 1e-3, 3),
              binomialTailAbove(64, 1e-3, 2));
}

} // namespace
} // namespace pcmscrub

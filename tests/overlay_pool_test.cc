/**
 * @file
 * Stress and contract tests for the CellStorage overlay slab pool.
 *
 * Write overlays materialize whenever a line's write clocks diverge
 * from the uniform per-line values and are dropped when the line
 * converges again. The pool recycles overlay nodes (and their vector
 * capacity) through a free list instead of round-tripping the
 * allocator on every transition, so these tests pin three things:
 * bytes() accounting stays exact across churn, released nodes are
 * actually reused, and concurrent materialization on distinct lines
 * is race-free (the concurrency test is what the sanitizer CI lane
 * runs to catch pool races).
 */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "pcm/cell_storage.hh"

namespace pcmscrub {
namespace {

constexpr std::size_t kLines = 16;
constexpr std::size_t kCells = 64;

// The pool mutex makes CellStorage immovable, so tests configure a
// default-constructed instance in place.
void
configureStorage(CellStorage &store)
{
    CellStorage::Geometry g;
    g.lines = kLines;
    g.cellsPerLine = kCells;
    g.intendedWordsPerLine = (2 * kCells + 63) / 64;
    g.auxPlanes = false;
    g.manufSeed = 7;
    store.configure(g);
    store.ensureSpec(DeviceConfig{});
}

/** Exact footprint of one live overlay in bytes() terms. */
constexpr std::size_t
overlayBytes()
{
    return sizeof(WriteOverlay) + kCells * sizeof(std::uint32_t) +
        kCells * sizeof(Tick);
}

TEST(OverlayPool, BytesTrackLiveOverlaysExactly)
{
    CellStorage store;
    configureStorage(store);
    const std::size_t baseline = store.bytes();

    // Divergent write clock on one cell materializes the overlay.
    store.setWrites(3 * kCells, 99);
    ASSERT_TRUE(store.hasOverlay(3));
    EXPECT_EQ(store.bytes(), baseline + overlayBytes());

    store.setWrites(5 * kCells + 1, 42);
    EXPECT_EQ(store.bytes(), baseline + 2 * overlayBytes());

    // Converging back to uniform drops the overlay and the bytes —
    // recycled free-list nodes must not count as held.
    store.setWrites(3 * kCells, 0);
    store.normalizeOverlay(3);
    EXPECT_FALSE(store.hasOverlay(3));
    EXPECT_EQ(store.bytes(), baseline + overlayBytes());

    store.dropOverlay(5);
    store.dropOverlay(5); // Idempotent on a uniform line.
    EXPECT_EQ(store.bytes(), baseline);
}

TEST(OverlayPool, ReleasedNodesAreRecycled)
{
    CellStorage store;
    configureStorage(store);
    store.setWrites(0, 7);
    const WriteOverlay *first = store.overlay(0);
    ASSERT_NE(first, nullptr);
    store.dropOverlay(0);

    // The freed node is handed straight back on the next divergence,
    // on any line.
    store.setWrites(9 * kCells, 7);
    EXPECT_EQ(store.overlay(9), first);
}

TEST(OverlayPool, ChurnReachesSteadyStateFootprint)
{
    CellStorage store;
    configureStorage(store);
    const std::size_t baseline = store.bytes();

    std::size_t peak = 0;
    for (int round = 0; round < 200; ++round) {
        for (std::size_t line = 0; line < kLines; ++line)
            store.setWriteTick(line * kCells + (round % kCells),
                               Tick{1} + round);
        peak = std::max(peak, store.bytes());
        for (std::size_t line = 0; line < kLines; ++line)
            store.dropOverlay(line);
        EXPECT_EQ(store.bytes(), baseline);
    }
    // Every round materializes every line once: the peak is exactly
    // one overlay per line, round after round (no pool growth).
    EXPECT_EQ(peak, baseline + kLines * overlayBytes());
}

TEST(OverlayPool, ConcurrentChurnOnDistinctLines)
{
    CellStorage store;
    configureStorage(store);
    const std::size_t baseline = store.bytes();

    // Shards own disjoint line ranges but share the storage's pool;
    // the free list must survive concurrent acquire/release. Run it
    // under ASan/TSan-style CI lanes to surface races.
    constexpr int kThreads = 4;
    constexpr int kRounds = 500;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t) {
        workers.emplace_back([&store, t] {
            const std::size_t lo = t * (kLines / kThreads);
            const std::size_t hi = lo + kLines / kThreads;
            for (int round = 0; round < kRounds; ++round) {
                for (std::size_t line = lo; line < hi; ++line) {
                    store.setWrites(line * kCells, 1 + round);
                    store.dropOverlay(line);
                }
            }
        });
    }
    for (auto &worker : workers)
        worker.join();

    EXPECT_EQ(store.bytes(), baseline);
    for (std::size_t line = 0; line < kLines; ++line)
        EXPECT_FALSE(store.hasOverlay(line));
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the Start-Gap wear-leveling mapper: bijectivity under
 * rotation, data-consistency of every gap move, and the write-
 * flattening property that motivates it.
 */

#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "mem/wear_leveling.hh"

namespace pcmscrub {
namespace {

TEST(StartGap, InitialMappingIsIdentity)
{
    const StartGapMapper mapper(8, 4);
    EXPECT_EQ(mapper.physicalLines(), 9u);
    EXPECT_EQ(mapper.gap(), 8u);
    for (LineIndex la = 0; la < 8; ++la)
        EXPECT_EQ(mapper.physical(la), la);
}

TEST(StartGap, MappingStaysBijectiveForever)
{
    StartGapMapper mapper(16, 1); // Move the gap on every write.
    for (int step = 0; step < 16 * 17 * 3; ++step) {
        std::set<LineIndex> frames;
        for (LineIndex la = 0; la < 16; ++la) {
            const LineIndex pa = mapper.physical(la);
            EXPECT_LT(pa, mapper.physicalLines());
            EXPECT_NE(pa, mapper.gap()) << "step " << step;
            frames.insert(pa);
        }
        EXPECT_EQ(frames.size(), 16u) << "step " << step;
        mapper.recordWrite();
    }
    EXPECT_GT(mapper.revolutions(), 0u);
}

TEST(StartGap, EveryMoveKeepsDataConsistent)
{
    // Shadow memory: apply each returned copy and verify that every
    // logical line still reads its own value through the mapping.
    const std::uint64_t n = 12;
    StartGapMapper mapper(n, 1);
    std::vector<int> physicalData(mapper.physicalLines(), -1);
    for (LineIndex la = 0; la < n; ++la)
        physicalData[mapper.physical(la)] = static_cast<int>(la);

    for (int step = 0; step < static_cast<int>(n * (n + 1) * 4);
         ++step) {
        const auto move = mapper.recordWrite();
        ASSERT_TRUE(move.has_value());
        physicalData[move->to] = physicalData[move->from];
        for (LineIndex la = 0; la < n; ++la) {
            ASSERT_EQ(physicalData[mapper.physical(la)],
                      static_cast<int>(la))
                << "step " << step << " line " << la;
        }
    }
}

TEST(StartGap, GapMovesEveryPsiWrites)
{
    StartGapMapper mapper(8, 5);
    int moves = 0;
    for (int write = 0; write < 50; ++write)
        moves += mapper.recordWrite().has_value();
    EXPECT_EQ(moves, 10);
}

TEST(StartGap, MoveSourceIsAdjacentToGap)
{
    StartGapMapper mapper(8, 1);
    for (int step = 0; step < 40; ++step) {
        const LineIndex gapBefore = mapper.gap();
        const auto move = mapper.recordWrite();
        ASSERT_TRUE(move.has_value());
        if (gapBefore > 0) {
            EXPECT_EQ(move->to, gapBefore);
            EXPECT_EQ(move->from, gapBefore - 1);
        } else {
            EXPECT_EQ(move->from, mapper.logicalLines());
            EXPECT_EQ(move->to, 0u);
        }
    }
}

TEST(StartGap, FlattensSkewedWriteTraffic)
{
    // Zipf-hot logical lines; after enough revolutions the physical
    // write distribution must be far flatter than the logical one.
    const std::uint64_t n = 256;
    Random rng(9);
    ZipfGenerator zipf(n, 0.9);

    StartGapMapper mapper(n, 8);
    std::vector<std::uint64_t> physicalWrites(mapper.physicalLines(),
                                              0);
    std::vector<std::uint64_t> logicalWrites(n, 0);
    const std::uint64_t writes = 2'000'000;
    for (std::uint64_t w = 0; w < writes; ++w) {
        const LineIndex la = zipf.sample(rng);
        ++logicalWrites[la];
        ++physicalWrites[mapper.physical(la)];
        const auto move = mapper.recordWrite();
        if (move)
            ++physicalWrites[move->to]; // The copy wears the target.
    }

    const auto maxOf = [](const std::vector<std::uint64_t> &counts) {
        std::uint64_t max = 0;
        for (const auto c : counts)
            max = std::max(max, c);
        return max;
    };
    const double logicalMax = static_cast<double>(maxOf(logicalWrites));
    const double physicalMax =
        static_cast<double>(maxOf(physicalWrites));
    const double mean = static_cast<double>(writes) / n;
    // The hottest logical line is many times the mean; the hottest
    // physical frame must be within a small factor of it.
    EXPECT_GT(logicalMax / mean, 10.0);
    EXPECT_LT(physicalMax / mean, 3.0);
    EXPECT_GT(mapper.revolutions(), 2u);
}

TEST(StartGapDeath, InvalidConfigIsFatal)
{
    EXPECT_EXIT(StartGapMapper(1, 4), ::testing::ExitedWithCode(1),
                "two lines");
    EXPECT_EXIT(StartGapMapper(8, 0), ::testing::ExitedWithCode(1),
                "interval");
}

TEST(StartGapDeath, OutOfRangeLogicalPanics)
{
    const StartGapMapper mapper(8, 4);
    EXPECT_DEATH(mapper.physical(8), "out of range");
}

} // namespace
} // namespace pcmscrub

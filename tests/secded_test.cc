/**
 * @file
 * Tests for the Hamming SECDED code.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/secded.hh"

namespace pcmscrub {
namespace {

TEST(Secded, Classic7264Geometry)
{
    const SecdedCode code(64);
    EXPECT_EQ(code.dataBits(), 64u);
    EXPECT_EQ(code.codewordBits(), 72u);
    EXPECT_EQ(code.checkBits(), 8u);
    EXPECT_EQ(code.correctableErrors(), 1u);
    EXPECT_EQ(code.name(), "SECDED(72,64)");
}

TEST(Secded, CleanRoundTrip)
{
    const SecdedCode code(64);
    Random rng(1);
    for (int trial = 0; trial < 100; ++trial) {
        BitVector data(64);
        data.randomize(rng);
        BitVector cw = code.encode(data);
        EXPECT_TRUE(code.check(cw));
        const DecodeResult res = code.decode(cw);
        EXPECT_EQ(res.status, DecodeStatus::Clean);
        EXPECT_FALSE(res.usedFullDecode);
        EXPECT_EQ(code.extractData(cw), data);
    }
}

TEST(Secded, CorrectsEverySingleBitError)
{
    const SecdedCode code(64);
    Random rng(2);
    BitVector data(64);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    for (std::size_t bit = 0; bit < clean.size(); ++bit) {
        BitVector cw = clean;
        cw.flip(bit);
        EXPECT_FALSE(code.check(cw)) << "bit " << bit;
        const DecodeResult res = code.decode(cw);
        EXPECT_EQ(res.status, DecodeStatus::Corrected) << "bit " << bit;
        EXPECT_EQ(res.correctedBits, 1u);
        EXPECT_TRUE(res.usedFullDecode);
        EXPECT_EQ(cw, clean) << "bit " << bit;
    }
}

TEST(Secded, DetectsEveryDoubleBitError)
{
    const SecdedCode code(32);
    Random rng(3);
    BitVector data(32);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    for (std::size_t i = 0; i < clean.size(); ++i) {
        for (std::size_t j = i + 1; j < clean.size(); ++j) {
            BitVector cw = clean;
            cw.flip(i);
            cw.flip(j);
            const DecodeResult res = code.decode(cw);
            EXPECT_EQ(res.status, DecodeStatus::Uncorrectable)
                << "bits " << i << "," << j;
            // The codeword must be untouched on detection.
            BitVector expect = clean;
            expect.flip(i);
            expect.flip(j);
            EXPECT_EQ(cw, expect);
        }
    }
}

TEST(Secded, NonStandardWidths)
{
    for (const std::size_t k : {8ul, 16ul, 100ul, 512ul}) {
        const SecdedCode code(k);
        EXPECT_EQ(code.dataBits(), k);
        Random rng(k);
        BitVector data(k);
        data.randomize(rng);
        BitVector cw = code.encode(data);
        EXPECT_TRUE(code.check(cw));
        cw.flip(k / 2);
        const DecodeResult res = code.decode(cw);
        EXPECT_EQ(res.status, DecodeStatus::Corrected);
        EXPECT_EQ(code.extractData(cw), data);
    }
}

TEST(Secded, TripleErrorsNeverReportClean)
{
    // >= 3 errors may miscorrect (that's inherent to SECDED) but the
    // syndrome must never be zero for odd error counts.
    const SecdedCode code(64);
    Random rng(4);
    BitVector data(64);
    data.randomize(rng);
    const BitVector clean = code.encode(data);
    for (int trial = 0; trial < 300; ++trial) {
        BitVector cw = clean;
        std::size_t bits[3];
        bits[0] = rng.uniformInt(cw.size());
        do {
            bits[1] = rng.uniformInt(cw.size());
        } while (bits[1] == bits[0]);
        do {
            bits[2] = rng.uniformInt(cw.size());
        } while (bits[2] == bits[0] || bits[2] == bits[1]);
        for (const auto b : bits)
            cw.flip(b);
        EXPECT_FALSE(code.check(cw)) << "trial " << trial;
        const DecodeResult res = code.decode(cw);
        EXPECT_NE(res.status, DecodeStatus::Clean) << "trial " << trial;
    }
}

} // namespace
} // namespace pcmscrub

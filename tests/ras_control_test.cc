/**
 * @file
 * RAS control-plane contract tests: the runtime scrub-interval knob
 * honours its configured bounds (and fatal()s on anything outside
 * them), operator-requested PPR repairs obey the one-shot fuse
 * semantics, per-region telemetry reconciles exactly with the global
 * ScrubMetrics and stays bit-identical across thread counts, and the
 * ScrubRateController's tighten/relax/hold arithmetic matches its
 * documented hysteresis and clamping behaviour.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "faults/fault_injector.hh"
#include "mem/metadata.hh"
#include "mem/ppr.hh"
#include "ras/control_plane.hh"
#include "ras/controlled_scrub.hh"
#include "ras/controller.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"
#include "scrub/sweep_scrub.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);

RasSettings
testSettings()
{
    RasSettings ras;
    ras.enabled = true;
    ras.minIntervalS = 600.0;
    ras.maxIntervalS = 7200.0;
    ras.sloUePerLineDay = 1e-3;
    ras.sampleEveryS = 6.0 * 3600.0;
    ras.stepFactor = 2.0;
    ras.hysteresis = 0.25;
    ras.linesPerRegion = 16;
    return ras;
}

AnalyticConfig
quietConfig()
{
    AnalyticConfig config;
    config.lines = 64;
    config.scheme = EccScheme::bch(4);
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 42;
    return config;
}

// ---------------------------------------------------------------
// Scrub-rate knob: bounded get/set.
// ---------------------------------------------------------------

TEST(RasControlPlane, IntervalGetSetWithinBounds)
{
    AnalyticBackend backend(quietConfig());
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());

    EXPECT_DOUBLE_EQ(plane.scrubIntervalS(), 3600.0);

    plane.setScrubIntervalS(1200.0);
    EXPECT_DOUBLE_EQ(plane.scrubIntervalS(), 1200.0);
    EXPECT_EQ(policy.interval(), secondsToTicks(1200.0));

    // The bounds themselves are legal values.
    plane.setScrubIntervalS(600.0);
    plane.setScrubIntervalS(7200.0);
    EXPECT_DOUBLE_EQ(plane.scrubIntervalS(), 7200.0);
}

TEST(RasControlPlaneDeathTest, SetIntervalOutsideBoundsRejected)
{
    AnalyticBackend backend(quietConfig());
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());

    EXPECT_EXIT(plane.setScrubIntervalS(599.0),
                ::testing::ExitedWithCode(1),
                "outside the control-plane bounds");
    EXPECT_EXIT(plane.setScrubIntervalS(7201.0),
                ::testing::ExitedWithCode(1),
                "outside the control-plane bounds");
}

TEST(RasControlPlaneDeathTest, CtorRejectsPolicyOutsideBounds)
{
    AnalyticBackend backend(quietConfig());
    StrongEccScrub policy(secondsToTicks(60.0)); // Below the floor.
    EXPECT_EXIT(
        RasControlPlane(backend, policy, testSettings()),
        ::testing::ExitedWithCode(1),
        "starts outside the control-plane bounds");
}

TEST(RasControlPlaneDeathTest, CtorRevalidatesSettings)
{
    AnalyticBackend backend(quietConfig());
    StrongEccScrub policy(secondsToTicks(3600.0));

    RasSettings badStep = testSettings();
    badStep.stepFactor = 1.0;
    EXPECT_EXIT(RasControlPlane(backend, policy, badStep),
                ::testing::ExitedWithCode(1),
                "step_factor must be > 1");

    RasSettings badBounds = testSettings();
    badBounds.maxIntervalS = badBounds.minIntervalS / 2.0;
    EXPECT_EXIT(RasControlPlane(backend, policy, badBounds),
                ::testing::ExitedWithCode(1),
                "max_interval_s must be >= min_interval_s");

    RasSettings badHyst = testSettings();
    badHyst.hysteresis = 1.0;
    EXPECT_EXIT(RasControlPlane(backend, policy, badHyst),
                ::testing::ExitedWithCode(1),
                "hysteresis must be in \\[0, 1\\)");
}

// ---------------------------------------------------------------
// Operator-requested PPR: the explicit repair verb.
// ---------------------------------------------------------------

AnalyticConfig
pprConfig(std::uint64_t spare_rows)
{
    AnalyticConfig config = quietConfig();
    config.degradation.enabled = true;
    config.degradation.pprSpareRows = spare_rows;
    config.degradation.pprUeThreshold = 2;
    return config;
}

TEST(RasControlPlane, RequestPprRemapConsumesASpareRow)
{
    AnalyticBackend backend(pprConfig(4));
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());

    EXPECT_FALSE(backend.pprTable().isRemapped(3));
    plane.requestPprRemap(3, kHour);
    EXPECT_TRUE(backend.pprTable().isRemapped(3));
    EXPECT_EQ(backend.pprTable().remaining(), 3u);
    EXPECT_EQ(backend.pprTable().remappedCount(), 1u);
}

TEST(RasControlPlaneDeathTest, PprRemapRejectsBadRequests)
{
    AnalyticBackend backend(pprConfig(1));
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());

    // Out-of-range address.
    EXPECT_EXIT(plane.requestPprRemap(backend.lineCount(), kHour),
                ::testing::ExitedWithCode(1), "out of range");

    plane.requestPprRemap(0, kHour);

    // The fuse is one-shot per address.
    EXPECT_EXIT(plane.requestPprRemap(0, kHour),
                ::testing::ExitedWithCode(1),
                "one-shot per address");

    // The single spare row is now gone.
    EXPECT_EXIT(plane.requestPprRemap(1, kHour),
                ::testing::ExitedWithCode(1),
                "PPR spare rows exhausted");
}

TEST(RasControlPlaneDeathTest, PprRemapRequiresProvisionedRows)
{
    AnalyticBackend backend(quietConfig()); // No PPR rows.
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());

    EXPECT_EXIT(plane.requestPprRemap(0, kHour),
                ::testing::ExitedWithCode(1),
                "no PPR spare rows provisioned");
}

TEST(RasControlPlaneDeathTest, PprRemapRejectsRetiredLine)
{
    // One UE with ppr_ue_threshold = 2 is not chronic, so the ladder
    // retires the line instead of burning a spare row on it; the
    // operator must not then be able to fuse the dead address.
    AnalyticConfig config = pprConfig(4);
    config.degradation.maxRetries = 0;
    config.degradation.ecpRepair = false;
    config.degradation.spareLines = 2;
    AnalyticBackend backend(config);

    FaultCampaignConfig campaign;
    campaign.disturbFlipsPerRead = 20.0; // Defeats BCH t=4.
    campaign.seed = 7;
    FaultInjector injector(campaign);
    backend.setFaultInjector(&injector);
    const FullDecodeOutcome outcome = backend.fullDecode(5, kHour);
    ASSERT_EQ(outcome.handledBy, DegradationStage::Retire);
    backend.setFaultInjector(nullptr);

    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());
    EXPECT_EXIT(plane.requestPprRemap(5, kHour),
                ::testing::ExitedWithCode(1),
                "retired addresses cannot be PPR-remapped");
}

// ---------------------------------------------------------------
// Telemetry: region counters reconcile with the global metrics.
// ---------------------------------------------------------------

AnalyticConfig
driftyConfig()
{
    AnalyticConfig config;
    config.lines = 96; // Not a multiple of the region size: the
                       // last region is short on purpose.
    config.scheme = EccScheme::bch(4);
    config.demand.writesPerLinePerSecond = 1e-5;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = 11;
    return config;
}

/** Drive a controlled sweep for `days` simulated days. */
void
runSweep(AnalyticBackend &backend, ControlledScrub &policy,
         double days)
{
    const Tick horizon = secondsToTicks(days * 86400.0);
    while (policy.nextWake() <= horizon)
        policy.wake(backend, policy.nextWake());
}

TEST(RegionTelemetryIntegration, TotalsReconcileWithScrubMetrics)
{
    AnalyticBackend backend(driftyConfig());
    ControlledScrub policy(
        std::make_unique<StrongEccScrub>(secondsToTicks(3600.0)),
        backend, testSettings(), /*auto_tune=*/false, "totals");
    runSweep(backend, policy, 3.0);

    const ScrubMetrics &m = backend.metrics();
    const RegionTelemetry &telemetry =
        policy.controlPlane().telemetry();
    const RegionCounters totals = telemetry.totals();

    ASSERT_GT(m.scrubRewrites, 0u);
    EXPECT_EQ(totals.scrubWrites, m.scrubRewrites);
    EXPECT_EQ(totals.correctedErrors, m.correctedErrors);
    EXPECT_EQ(totals.uncorrectable, m.ueSurfaced);
    EXPECT_GT(totals.energyPj, 0.0);

    // Regions partition the device: per-region counters sum to the
    // device-wide totals exactly (energy included).
    RegionCounters summed;
    for (std::uint64_t r = 0; r < telemetry.regionCount(); ++r)
        summed.merge(telemetry.region(r));
    EXPECT_EQ(summed.scrubWrites, totals.scrubWrites);
    EXPECT_EQ(summed.correctedErrors, totals.correctedErrors);
    EXPECT_EQ(summed.uncorrectable, totals.uncorrectable);
    EXPECT_EQ(summed.ladderEscalations, totals.ladderEscalations);
    EXPECT_EQ(summed.energyPj, totals.energyPj);

    // 96 lines at 16 lines/region = 6 regions.
    EXPECT_EQ(telemetry.regionCount(), 6u);
}

TEST(RegionTelemetryIntegration, BitIdenticalAcrossThreadCounts)
{
    std::vector<RegionCounters> regions[2];
    double finalInterval[2] = {0.0, 0.0};
    const unsigned threadCounts[2] = {1, 4};
    for (int pass = 0; pass < 2; ++pass) {
        ThreadPool::global().resize(threadCounts[pass]);
        AnalyticBackend backend(driftyConfig());
        ControlledScrub policy(
            std::make_unique<StrongEccScrub>(secondsToTicks(3600.0)),
            backend, testSettings(), /*auto_tune=*/true, "threads");
        runSweep(backend, policy, 3.0);
        const RegionTelemetry &telemetry =
            policy.controlPlane().telemetry();
        for (std::uint64_t r = 0; r < telemetry.regionCount(); ++r)
            regions[pass].push_back(telemetry.region(r));
        finalInterval[pass] =
            policy.controlPlane().scrubIntervalS();
    }
    ThreadPool::global().resize(1);

    ASSERT_EQ(regions[0].size(), regions[1].size());
    for (std::size_t r = 0; r < regions[0].size(); ++r) {
        EXPECT_EQ(regions[0][r].correctedErrors,
                  regions[1][r].correctedErrors) << "region " << r;
        EXPECT_EQ(regions[0][r].uncorrectable,
                  regions[1][r].uncorrectable) << "region " << r;
        EXPECT_EQ(regions[0][r].ladderEscalations,
                  regions[1][r].ladderEscalations) << "region " << r;
        EXPECT_EQ(regions[0][r].scrubWrites,
                  regions[1][r].scrubWrites) << "region " << r;
        // Bit-identical energy, not just approximately equal.
        EXPECT_EQ(regions[0][r].energyPj, regions[1][r].energyPj)
            << "region " << r;
    }
    EXPECT_EQ(finalInterval[0], finalInterval[1]);
}

TEST(RegionTelemetryIntegration, CellBackendRecordsTelemetry)
{
    CellBackendConfig config;
    config.lines = 32;
    config.scheme = EccScheme::bch(4);
    config.seed = 3;
    CellBackend backend(config);
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, testSettings());

    const Tick horizon = secondsToTicks(2.0 * 86400.0);
    while (policy.nextWake() <= horizon)
        policy.wake(backend, policy.nextWake());

    const RegionCounters totals = plane.telemetry().totals();
    EXPECT_EQ(totals.scrubWrites, backend.metrics().scrubRewrites);
    EXPECT_EQ(totals.correctedErrors,
              backend.metrics().correctedErrors);
    EXPECT_GT(totals.energyPj, 0.0);
}

// ---------------------------------------------------------------
// ScrubRateController: the feedback arithmetic.
// ---------------------------------------------------------------

class ControllerTest : public ::testing::Test
{
  protected:
    ControllerTest()
        : settings_(testSettings()),
          controller_(settings_, /*lines=*/1000)
    {
        // Prime the baseline at t = 0 with zeroed counters.
        const ControllerSample first =
            controller_.sample(0, metrics_, 3600.0);
        EXPECT_EQ(first.action, ControllerAction::Hold);
    }

    /** Advance one day and surface `ues` additional UEs. */
    ControllerSample dayLater(std::uint64_t ues, double interval_s,
                              std::uint64_t writes = 0)
    {
        ++days_;
        metrics_.ueSurfaced += ues;
        metrics_.scrubRewrites += writes;
        return controller_.sample(
            secondsToTicks(days_ * 86400.0), metrics_, interval_s);
    }

    RasSettings settings_;
    ScrubMetrics metrics_;
    ScrubRateController controller_;
    unsigned days_ = 0;
};

TEST_F(ControllerTest, TightensAboveSloAndClampsToMin)
{
    // slo 1e-3/line-day * 1000 lines = 1 UE/day; hysteresis 0.25
    // puts the tighten threshold at 1.25/day.
    const ControllerSample s = dayLater(/*ues=*/10, 3600.0);
    EXPECT_EQ(s.action, ControllerAction::Tighten);
    EXPECT_DOUBLE_EQ(s.ueRate, 10.0 / 1000.0);
    EXPECT_DOUBLE_EQ(s.intervalAfterS, 1800.0);

    // Tightening from just above the floor clamps to the floor.
    const ControllerSample clamped = dayLater(10, 700.0);
    EXPECT_EQ(clamped.action, ControllerAction::Tighten);
    EXPECT_DOUBLE_EQ(clamped.intervalAfterS,
                     settings_.minIntervalS);
}

TEST_F(ControllerTest, RelaxesOnlyAfterTwoCalmSamples)
{
    const ControllerSample calm1 = dayLater(/*ues=*/0, 3600.0);
    EXPECT_EQ(calm1.action, ControllerAction::Hold);
    EXPECT_EQ(controller_.calmSamples(), 1u);

    const ControllerSample calm2 = dayLater(0, 3600.0);
    EXPECT_EQ(calm2.action, ControllerAction::Relax);
    EXPECT_DOUBLE_EQ(calm2.intervalAfterS,
                     3600.0 * std::sqrt(settings_.stepFactor));
    EXPECT_EQ(controller_.calmSamples(), 0u); // Streak restarts.
}

TEST_F(ControllerTest, RelaxClampsToMax)
{
    dayLater(0, 7000.0);
    const ControllerSample s = dayLater(0, 7000.0);
    EXPECT_EQ(s.action, ControllerAction::Relax);
    EXPECT_DOUBLE_EQ(s.intervalAfterS, settings_.maxIntervalS);
}

TEST_F(ControllerTest, DeadbandHoldsAndResetsCalmStreak)
{
    dayLater(0, 3600.0); // calm = 1.
    // 1 UE/day on 1000 lines = exactly the SLO: inside the deadband.
    const ControllerSample hold = dayLater(1, 3600.0);
    EXPECT_EQ(hold.action, ControllerAction::Hold);
    EXPECT_EQ(controller_.calmSamples(), 0u);

    // The earlier calm sample must not count any more: one more calm
    // day is still only streak 1.
    const ControllerSample calm = dayLater(0, 3600.0);
    EXPECT_EQ(calm.action, ControllerAction::Hold);
    EXPECT_EQ(controller_.calmSamples(), 1u);
}

TEST_F(ControllerTest, UeSloOutranksWriteBudget)
{
    // Over the write budget but also over the UE SLO: tighten wins —
    // uncorrectable exposure dominates any energy concern.
    settings_.writeBudgetPerLineDay = 1.0;
    ScrubRateController controller(settings_, 1000);
    controller.sample(0, metrics_, 3600.0);
    metrics_.ueSurfaced += 10;
    metrics_.scrubRewrites += 10000;
    const ControllerSample s = controller.sample(
        secondsToTicks(86400.0), metrics_, 3600.0);
    EXPECT_EQ(s.action, ControllerAction::Tighten);
}

TEST_F(ControllerTest, WriteBudgetAcceleratesRelax)
{
    // Calm UE-wise but spending over the write budget: a single calm
    // sample is enough to relax (no need to wait out the streak).
    settings_.writeBudgetPerLineDay = 1.0;
    ScrubRateController controller(settings_, 1000);
    controller.sample(0, metrics_, 3600.0);
    metrics_.scrubRewrites += 10000; // 10 writes/line-day > budget.
    const ControllerSample s = controller.sample(
        secondsToTicks(86400.0), metrics_, 3600.0);
    EXPECT_EQ(s.action, ControllerAction::Relax);
}

TEST_F(ControllerTest, LadderAbsorbedUesDoNotCountAgainstSlo)
{
    // The ladder doing its job is not an SLO breach: only surfaced
    // and demand-read UEs feed the controller.
    metrics_.uePprRemapped += 500;
    metrics_.ueRetired += 500;
    dayLater(0, 3600.0);
    const ControllerSample s = dayLater(0, 3600.0);
    EXPECT_EQ(s.action, ControllerAction::Relax);
    EXPECT_DOUBLE_EQ(s.ueRate, 0.0);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * The extended degradation ladder with the PPR rung in place: the
 * escalation order is retry -> ECP re-learn -> PPR remap -> spare
 * retirement -> SLC fallback -> host-visible, on both backends. PPR
 * is chronic-gated (a one-off UE does not burn a spare row) and
 * one-shot per address (a remapped line that fails again falls
 * through to retirement). Ladder counters in ScrubMetrics track
 * every rung, and the whole pipeline stays bit-identical across
 * worker-thread counts.
 */

#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "faults/fault_injector.hh"
#include "mem/ppr.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"
#include "scrub/sweep_scrub.hh"

namespace pcmscrub {
namespace {

// ---------------------------------------------------------------
// Analytic backend: one line walked down the whole ladder.
// ---------------------------------------------------------------

AnalyticConfig
ladderConfig()
{
    AnalyticConfig config;
    config.lines = 2;
    config.scheme = EccScheme::bch(4);
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 13;
    config.degradation.enabled = true;
    // Retry and ECP are exercised separately below; for the walk
    // down the repair rungs they are switched off so every induced
    // UE reaches stage 3+ deterministically.
    config.degradation.maxRetries = 0;
    config.degradation.ecpRepair = false;
    config.degradation.pprSpareRows = 2;
    config.degradation.pprUeThreshold = 1;
    config.degradation.spareLines = 2;
    config.degradation.slcFallback = true;
    return config;
}

FaultInjector &
lethalInjector()
{
    static FaultCampaignConfig campaign = [] {
        FaultCampaignConfig c;
        c.disturbFlipsPerRead = 20.0; // Far beyond BCH t=4.
        c.seed = 99;
        return c;
    }();
    static FaultInjector injector(campaign);
    return injector;
}

TEST(PprLadder, AnalyticEscalationOrder)
{
    AnalyticBackend backend(ladderConfig());
    backend.setFaultInjector(&lethalInjector());

    // Each pass defeats the decoder outright, so each pass consumes
    // exactly one rung per line, in the documented priority order.
    const DegradationStage expected[] = {
        DegradationStage::PprRemap,  // Chronic at threshold 1.
        DegradationStage::Retire,    // The fuse is one-shot.
        DegradationStage::SlcFallback,
        DegradationStage::HostVisible,
    };
    for (unsigned pass = 0; pass < 4; ++pass) {
        const Tick now = secondsToTicks(100.0 * (pass + 1));
        for (LineIndex line = 0; line < backend.lineCount(); ++line) {
            const FullDecodeOutcome outcome =
                backend.fullDecode(line, now);
            EXPECT_EQ(outcome.handledBy, expected[pass])
                << "pass " << pass << " line " << line;
        }
    }

    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.uePprRemapped, 2u);
    EXPECT_EQ(m.ueRetired, 2u);
    EXPECT_EQ(m.ueSlcFallbacks, 2u);
    EXPECT_EQ(m.ueSurfaced, 2u);
    EXPECT_EQ(m.ueAbsorbed(), 6u);
    EXPECT_EQ(m.pprSparesRemaining, 0u);
    EXPECT_EQ(m.sparesRemaining, 0u);
    EXPECT_TRUE(backend.pprTable().exhausted());
    EXPECT_TRUE(backend.pprTable().isRemapped(0));
    EXPECT_TRUE(backend.pprTable().isRemapped(1));
}

TEST(PprLadder, AnalyticRetryAndEcpOutrankPpr)
{
    // With retry enabled, a transient-only UE never reaches the
    // repair rungs: the re-read sheds the disturbance outright.
    AnalyticConfig config = ladderConfig();
    config.degradation.maxRetries = 1;
    AnalyticBackend retryBackend(config);
    retryBackend.setFaultInjector(&lethalInjector());
    const FullDecodeOutcome viaRetry =
        retryBackend.fullDecode(0, secondsToTicks(100.0));
    EXPECT_EQ(viaRetry.handledBy, DegradationStage::Retry);
    EXPECT_EQ(retryBackend.metrics().uePprRemapped, 0u);
    EXPECT_EQ(retryBackend.pprTable().remappedCount(), 0u);

    // With ECP repair enabled (and no stuck cells to re-learn), the
    // write-verify pass absorbs the event before PPR is consulted.
    config.degradation.maxRetries = 0;
    config.degradation.ecpRepair = true;
    config.ecpEntries = 2;
    AnalyticBackend ecpBackend(config);
    ecpBackend.setFaultInjector(&lethalInjector());
    const FullDecodeOutcome viaEcp =
        ecpBackend.fullDecode(0, secondsToTicks(100.0));
    EXPECT_EQ(viaEcp.handledBy, DegradationStage::EcpRepair);
    EXPECT_EQ(ecpBackend.metrics().uePprRemapped, 0u);
}

TEST(PprLadder, AnalyticChronicGateSparesOneOffLines)
{
    // Threshold 2: the first UE is not chronic and must fall through
    // to retirement without burning a spare row; the second UE on
    // the same (now chronically failing) address qualifies.
    AnalyticConfig config = ladderConfig();
    config.degradation.pprUeThreshold = 2;
    config.degradation.spareLines = 0; // Isolate the PPR decision.
    config.degradation.slcFallback = false;
    AnalyticBackend backend(config);
    backend.setFaultInjector(&lethalInjector());

    const FullDecodeOutcome first =
        backend.fullDecode(0, secondsToTicks(100.0));
    EXPECT_EQ(first.handledBy, DegradationStage::HostVisible);
    EXPECT_EQ(backend.pprTable().ueHistory(0), 1u);
    EXPECT_EQ(backend.pprTable().remappedCount(), 0u);

    const FullDecodeOutcome second =
        backend.fullDecode(0, secondsToTicks(200.0));
    EXPECT_EQ(second.handledBy, DegradationStage::PprRemap);
    EXPECT_EQ(backend.pprTable().ueHistory(0), 2u);
    EXPECT_TRUE(backend.pprTable().isRemapped(0));
    EXPECT_EQ(backend.metrics().uePprRemapped, 1u);
    EXPECT_EQ(backend.metrics().ueSurfaced, 1u);
}

// ---------------------------------------------------------------
// Cell backend: hard faults walking the same rungs.
// ---------------------------------------------------------------

TEST(PprLadder, CellEscalationOrder)
{
    CellBackendConfig config;
    config.lines = 2;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 16;
    config.seed = 17;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 1;
    config.degradation.pprSpareRows = 1;
    config.degradation.pprUeThreshold = 1;
    config.degradation.spareLines = 1;
    config.degradation.slcFallback = true;
    CellBackend backend(config);

    FaultCampaignConfig campaign;
    campaign.seed = 23;
    FaultInjector freezer(campaign);

    const LineIndex line = 0;

    // Rung 2: a modest stuck population fits the ECP budget, so the
    // write-verify pass re-learns it and the line decodes again.
    freezer.freezeCells(backend.array().line(line), 8);
    FullDecodeOutcome outcome =
        backend.fullDecode(line, secondsToTicks(1.0));
    EXPECT_EQ(outcome.handledBy, DegradationStage::EcpRepair);

    // Rung 3: a stuck population beyond ECP+ECC reach forces the
    // first repair rung — the chronic address (one prior escalation
    // at threshold 1) is fused over to the PPR spare row.
    freezer.freezeCells(backend.array().line(line), 60);
    outcome = backend.fullDecode(line, secondsToTicks(2.0));
    EXPECT_EQ(outcome.handledBy, DegradationStage::PprRemap);
    EXPECT_TRUE(backend.pprTable().isRemapped(line));
    EXPECT_EQ(backend.metrics().uePprRemapped, 1u);
    EXPECT_EQ(backend.metrics().pprSparesRemaining, 0u);
    // The remapped row is fresh silicon: clean from here on.
    EXPECT_EQ(backend.trueErrors(line, secondsToTicks(2.5)), 0u);

    // Rung 4: the fuse is one-shot, so killing the spare row falls
    // through to spare-pool retirement.
    freezer.freezeCells(backend.array().line(line), 60);
    outcome = backend.fullDecode(line, secondsToTicks(3.0));
    EXPECT_EQ(outcome.handledBy, DegradationStage::Retire);
    EXPECT_EQ(backend.metrics().ueRetired, 1u);
    EXPECT_EQ(backend.metrics().sparesRemaining, 0u);

    // Rung 5: with every spare consumed, the next failure drops the
    // line to SLC. 60 dead cells defeat even SLC operation, so the
    // event still surfaces — but the fallback is recorded and the
    // ladder is fully exhausted for this address.
    freezer.freezeCells(backend.array().line(line), 60);
    outcome = backend.fullDecode(line, secondsToTicks(4.0));
    EXPECT_EQ(backend.metrics().ueSlcFallbacks, 1u);
    EXPECT_EQ(outcome.handledBy, DegradationStage::HostVisible);

    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.ueEcpRepaired, 1u);
    EXPECT_EQ(m.uePprRemapped, 1u);
    EXPECT_EQ(m.ueRetired, 1u);
    EXPECT_EQ(m.ueSurfaced, 1u);
}

TEST(PprLadder, CellSlcFallbackAbsorbsDriftDamage)
{
    // Drift is exactly what SLC fallback cures: a line left alone
    // long enough for resistance drift to defeat the decoder has no
    // stuck cells, so the half-density (drift-immune) reprogram
    // absorbs the event instead of surfacing it.
    CellBackendConfig config;
    config.lines = 1;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 0;
    config.seed = 31;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 0;
    config.degradation.slcFallback = true;
    CellBackend backend(config);

    const Tick decade = secondsToTicks(10.0 * 365.0 * 86400.0);
    const FullDecodeOutcome outcome = backend.fullDecode(0, decade);
    EXPECT_EQ(outcome.handledBy, DegradationStage::SlcFallback);
    EXPECT_EQ(backend.metrics().ueSlcFallbacks, 1u);
    EXPECT_EQ(backend.metrics().ueSurfaced, 0u);
}

// ---------------------------------------------------------------
// Determinism: the PPR rung under the parallel engine.
// ---------------------------------------------------------------

/** A sweep pipeline heavy enough to fire the PPR rung via drift. */
ScrubMetrics
runParallelLadder(unsigned threads)
{
    ThreadPool::global().resize(threads);
    AnalyticConfig config;
    config.lines = 512;
    config.scheme = EccScheme::bch(4);
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = 41;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 0;
    config.degradation.ecpRepair = false;
    // Budgets the 14-day run cannot exhaust: which line wins the
    // last row of a contended pool is scheduling-dependent (see
    // PprRemapTable), so an exhausting campaign cannot assert
    // thread-count determinism. Exhaustion fall-through is covered
    // by the serial escalation-order tests above.
    config.degradation.pprSpareRows = 512;
    config.degradation.pprUeThreshold = 1;
    config.degradation.spareLines = 512;
    AnalyticBackend backend(config);

    // A relaxed sweep on BCH-4 lets the fast-drifter tail reach
    // uncorrectable depth between visits, so the ladder fires from
    // ordinary scrub operation (no injector).
    StrongEccScrub policy(secondsToTicks(6.0 * 3600.0));
    const Tick horizon = secondsToTicks(14.0 * 86400.0);
    while (policy.nextWake() <= horizon)
        policy.wake(backend, policy.nextWake());

    ScrubMetrics metrics = backend.metrics();
    ThreadPool::global().resize(1);
    return metrics;
}

TEST(PprLadder, ParallelDeterminismWithPprRung)
{
    const ScrubMetrics serial = runParallelLadder(1);
    const ScrubMetrics parallel = runParallelLadder(4);

    // The campaign must actually exercise the rung being tested —
    // without contending for the last row/spare, which is the one
    // scheduling-dependent allocation (see PprRemapTable).
    EXPECT_GT(serial.uePprRemapped, 0u);
    EXPECT_GT(serial.pprSparesRemaining, 0u);
    EXPECT_GT(serial.sparesRemaining, 0u);

    EXPECT_EQ(serial.uePprRemapped, parallel.uePprRemapped);
    EXPECT_EQ(serial.ueRetired, parallel.ueRetired);
    EXPECT_EQ(serial.ueSurfaced, parallel.ueSurfaced);
    EXPECT_EQ(serial.pprSparesRemaining,
              parallel.pprSparesRemaining);
    EXPECT_EQ(serial.sparesRemaining, parallel.sparesRemaining);
    EXPECT_EQ(serial.scrubRewrites, parallel.scrubRewrites);
    EXPECT_EQ(serial.correctedErrors, parallel.correctedErrors);
    EXPECT_EQ(serial.demandUncorrectable,
              parallel.demandUncorrectable);
    EXPECT_EQ(serial.energy.total(), parallel.energy.total());
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * The snapshot container and checkpoint codec under hostile input:
 * primitives round-trip bit-exactly, writes are atomic, and every
 * corruption — truncation, single bit flips anywhere in the file,
 * version or geometry or policy mismatches — is rejected with a
 * diagnostic, never a silently wrong resume.
 */

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/serialize.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/snapshot.hh"

namespace pcmscrub {
namespace {

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "pcmscrub_" + name;
}

std::vector<std::uint8_t>
readAll(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    return std::vector<std::uint8_t>(
        std::istreambuf_iterator<char>(in),
        std::istreambuf_iterator<char>());
}

void
writeAll(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good()) << path;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

// Serialization primitives ---------------------------------------

TEST(SerializeTest, PrimitivesRoundTrip)
{
    SnapshotSink sink;
    sink.u8(0xab);
    sink.u16(0xbeef);
    sink.u32(0xdeadbeefu);
    sink.u64(0x0123456789abcdefull);
    sink.boolean(true);
    sink.boolean(false);
    sink.f32(3.25f);
    sink.f64(-1.0 / 3.0);
    sink.str("hello snapshot");
    BitVector vec(130);
    vec.set(0, true);
    vec.set(64, true);
    vec.set(129, true);
    sink.bits(vec);

    const std::vector<std::uint8_t> &bytes = sink.bytes();
    SnapshotSource source(bytes.data(), bytes.size(), "test");
    EXPECT_EQ(source.u8(), 0xab);
    EXPECT_EQ(source.u16(), 0xbeef);
    EXPECT_EQ(source.u32(), 0xdeadbeefu);
    EXPECT_EQ(source.u64(), 0x0123456789abcdefull);
    EXPECT_TRUE(source.boolean());
    EXPECT_FALSE(source.boolean());
    EXPECT_EQ(source.f32(), 3.25f);
    EXPECT_EQ(source.f64(), -1.0 / 3.0);
    EXPECT_EQ(source.str(), "hello snapshot");
    const BitVector back = source.bits();
    ASSERT_EQ(back.size(), vec.size());
    for (std::size_t i = 0; i < vec.size(); ++i)
        EXPECT_EQ(back.get(i), vec.get(i)) << "bit " << i;
    source.finish(); // No trailing bytes.
}

TEST(SerializeDeathTest, TruncatedReadDies)
{
    SnapshotSink sink;
    sink.u32(7);
    const std::vector<std::uint8_t> bytes = sink.bytes();
    EXPECT_EXIT(
        {
            SnapshotSource source(bytes.data(), bytes.size(), "test");
            (void)source.u64();
        },
        ::testing::ExitedWithCode(1), "snapshot test");
}

TEST(SerializeDeathTest, TrailingBytesDie)
{
    SnapshotSink sink;
    sink.u32(7);
    sink.u8(1);
    const std::vector<std::uint8_t> bytes = sink.bytes();
    EXPECT_EXIT(
        {
            SnapshotSource source(bytes.data(), bytes.size(), "test");
            (void)source.u32();
            source.finish();
        },
        ::testing::ExitedWithCode(1), "snapshot test");
}

TEST(SerializeDeathTest, OutOfBoundsCountDies)
{
    SnapshotSink sink;
    sink.u64(1000);
    const std::vector<std::uint8_t> bytes = sink.bytes();
    EXPECT_EXIT(
        {
            SnapshotSource source(bytes.data(), bytes.size(), "test");
            (void)source.u64Bounded(64, "line count");
        },
        ::testing::ExitedWithCode(1), "line count");
}

TEST(SerializeTest, Crc32MatchesKnownVector)
{
    // CRC32("123456789") with the IEEE polynomial.
    const char *vector = "123456789";
    EXPECT_EQ(crc32(reinterpret_cast<const std::uint8_t *>(vector), 9),
              0xcbf43926u);
}

// Container ------------------------------------------------------

TEST(SnapshotContainerTest, RoundTripsSections)
{
    SnapshotWriter writer(0x1122334455667788ull);
    writer.addSection("alpha", {1, 2, 3});
    writer.addSection("beta", {});
    writer.addSection("gamma", {0xff, 0x00, 0xff, 0x7f});

    SnapshotReader reader(writer.serialize(), "test");
    EXPECT_EQ(reader.fingerprint(), 0x1122334455667788ull);
    EXPECT_TRUE(reader.hasSection("alpha"));
    EXPECT_TRUE(reader.hasSection("beta"));
    EXPECT_FALSE(reader.hasSection("delta"));

    SnapshotSource alpha = reader.section("alpha");
    EXPECT_EQ(alpha.u8(), 1);
    EXPECT_EQ(alpha.u8(), 2);
    EXPECT_EQ(alpha.u8(), 3);
    alpha.finish();

    SnapshotSource beta = reader.section("beta");
    EXPECT_EQ(beta.remaining(), 0u);
    beta.finish();

    SnapshotSource gamma = reader.section("gamma");
    EXPECT_EQ(gamma.u32(), 0x7fff00ffu);
    gamma.finish();
}

TEST(SnapshotContainerDeathTest, MissingSectionDies)
{
    SnapshotWriter writer(1);
    writer.addSection("alpha", {1});
    const std::vector<std::uint8_t> bytes = writer.serialize();
    EXPECT_EXIT(
        {
            SnapshotReader reader(bytes, "test");
            (void)reader.section("beta");
        },
        ::testing::ExitedWithCode(1), "missing");
}

TEST(SnapshotContainerTest, WriteFileIsAtomicAndLeavesNoTemp)
{
    const std::string path = tempPath("atomic.snap");
    SnapshotWriter writer(42);
    writer.addSection("alpha", {9, 9, 9});
    writer.writeFile(path);

    EXPECT_TRUE(fileExists(path));
    EXPECT_FALSE(fileExists(path + ".tmp"));

    // Overwrite with new content; the reader must see only the new
    // container, fully formed.
    SnapshotWriter second(43);
    second.addSection("alpha", {1});
    second.writeFile(path);
    const SnapshotReader reader = SnapshotReader::fromFile(path);
    EXPECT_EQ(reader.fingerprint(), 43u);
    EXPECT_FALSE(fileExists(path + ".tmp"));
    std::remove(path.c_str());
}

TEST(SnapshotContainerDeathTest, MissingFileDies)
{
    EXPECT_EXIT(
        (void)SnapshotReader::fromFile(tempPath("does_not_exist.snap")),
        ::testing::ExitedWithCode(1), "cannot open");
}

// Checkpoint codec on a real backend -----------------------------

AnalyticConfig
smallConfig(std::uint64_t seed)
{
    AnalyticConfig config;
    config.lines = 64;
    config.scheme = EccScheme::bch(4);
    config.demand.writesPerLinePerSecond = 1e-5;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = seed;
    return config;
}

PolicySpec
basicSpec()
{
    PolicySpec spec;
    spec.kind = PolicyKind::Basic;
    spec.interval = secondsToTicks(3600.0);
    return spec;
}

/** Run a short sim and write a checkpoint of its state to `path`. */
void
writeSampleCheckpoint(const std::string &path, std::uint64_t seed = 5)
{
    AnalyticBackend device(smallConfig(seed));
    const auto policy = makePolicy(basicSpec(), device);
    const std::uint64_t wakes =
        runScrub(device, *policy, secondsToTicks(6 * 3600.0));
    writeCheckpoint(path, device, *policy,
                    CheckpointMeta{0, secondsToTicks(6 * 3600.0), wakes,
                                   policy->name()});
}

/** Restore `path` into a freshly-built matching simulation. */
CheckpointMeta
restoreSampleCheckpoint(const std::string &path, std::uint64_t seed = 5)
{
    AnalyticBackend device(smallConfig(seed));
    const auto policy = makePolicy(basicSpec(), device);
    const SnapshotReader reader = SnapshotReader::fromFile(path);
    return readCheckpoint(reader, device, *policy);
}

TEST(CheckpointTest, MetaRoundTrips)
{
    const std::string path = tempPath("meta.snap");
    writeSampleCheckpoint(path);
    const CheckpointMeta meta = restoreSampleCheckpoint(path);
    EXPECT_EQ(meta.runOrdinal, 0u);
    EXPECT_EQ(meta.simTime, secondsToTicks(6 * 3600.0));
    EXPECT_GT(meta.wakes, 0u);
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, VersionMismatchDies)
{
    const std::string path = tempPath("version.snap");
    writeSampleCheckpoint(path);
    std::vector<std::uint8_t> bytes = readAll(path);
    ASSERT_GT(bytes.size(), 12u);
    // Patch the container back to the pre-RAS v1 format: old
    // snapshots predate the PPR/telemetry/interval state and must be
    // rejected loudly, naming both versions, not half-parsed.
    bytes[8] = 1; // Format version field, little-endian low byte.
    writeAll(path, bytes);
    EXPECT_EXIT((void)restoreSampleCheckpoint(path),
                ::testing::ExitedWithCode(1),
                "unsupported format version 1 \\(this build reads "
                "version 4\\)");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, V2SnapshotRejected)
{
    const std::string path = tempPath("version2.snap");
    writeSampleCheckpoint(path);
    std::vector<std::uint8_t> bytes = readAll(path);
    ASSERT_GT(bytes.size(), 12u);
    // v2 snapshots carry the pre-diet f32 cell planes; they must be
    // rejected up front (clear message naming both versions), never
    // mis-parsed into the quantized v3 layout.
    bytes[8] = 2; // Format version field, little-endian low byte.
    writeAll(path, bytes);
    EXPECT_EXIT((void)restoreSampleCheckpoint(path),
                ::testing::ExitedWithCode(1),
                "unsupported format version 2 \\(this build reads "
                "version 4\\)");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, BadMagicDies)
{
    const std::string path = tempPath("magic.snap");
    writeSampleCheckpoint(path);
    std::vector<std::uint8_t> bytes = readAll(path);
    bytes[0] = 'X';
    writeAll(path, bytes);
    EXPECT_EXIT((void)restoreSampleCheckpoint(path),
                ::testing::ExitedWithCode(1), "snapshot");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, GeometryMismatchDies)
{
    const std::string path = tempPath("geometry.snap");
    writeSampleCheckpoint(path);
    EXPECT_EXIT(
        {
            AnalyticConfig config = smallConfig(5);
            config.lines = 128; // Snapshot was taken at 64 lines.
            AnalyticBackend device(config);
            const auto policy = makePolicy(basicSpec(), device);
            const SnapshotReader reader = SnapshotReader::fromFile(path);
            (void)readCheckpoint(reader, device, *policy);
        },
        ::testing::ExitedWithCode(1), "fingerprint");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, SeedMismatchDies)
{
    const std::string path = tempPath("seed.snap");
    writeSampleCheckpoint(path, 5);
    EXPECT_EXIT((void)restoreSampleCheckpoint(path, 6),
                ::testing::ExitedWithCode(1), "fingerprint");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, PolicyMismatchDies)
{
    const std::string path = tempPath("policy.snap");
    writeSampleCheckpoint(path);
    EXPECT_EXIT(
        {
            AnalyticBackend device(smallConfig(5));
            PolicySpec spec;
            spec.kind = PolicyKind::Threshold;
            spec.interval = secondsToTicks(3600.0);
            spec.rewriteThreshold = 2;
            const auto policy = makePolicy(spec, device);
            const SnapshotReader reader = SnapshotReader::fromFile(path);
            (void)readCheckpoint(reader, device, *policy);
        },
        ::testing::ExitedWithCode(1), "saved by policy");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, UnexpectedExtraStateDies)
{
    const std::string path = tempPath("extra.snap");
    {
        AnalyticBackend device(smallConfig(5));
        const auto policy = makePolicy(basicSpec(), device);
        writeCheckpoint(path, device, *policy,
                        CheckpointMeta{0, 0, 0, policy->name()},
                        [](SnapshotSink &sink) { sink.u64(7); });
    }
    // Reading without an extra-state hook must be rejected, not
    // silently dropped.
    EXPECT_EXIT((void)restoreSampleCheckpoint(path),
                ::testing::ExitedWithCode(1), "harness state");
    std::remove(path.c_str());
}

TEST(CheckpointDeathTest, MissingExtraStateDies)
{
    const std::string path = tempPath("noextra.snap");
    writeSampleCheckpoint(path);
    EXPECT_EXIT(
        {
            AnalyticBackend device(smallConfig(5));
            const auto policy = makePolicy(basicSpec(), device);
            const SnapshotReader reader = SnapshotReader::fromFile(path);
            (void)readCheckpoint(reader, device, *policy,
                                 [](SnapshotSource &source) {
                                     (void)source.u64();
                                 });
        },
        ::testing::ExitedWithCode(1), "harness state");
    std::remove(path.c_str());
}

// Corruption fuzz ------------------------------------------------
//
// Every single-bit flip anywhere in a snapshot must be caught by
// some layer — section CRCs for payload bytes, field validation for
// the header, the fingerprint check for the config stamp — and every
// truncation must die on the length check. The full readCheckpoint()
// path is driven so nothing can slip through between layers.

class SnapshotFuzzDeathTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        path_ = tempPath("fuzz.snap");
        writeSampleCheckpoint(path_);
        pristine_ = readAll(path_);
        ASSERT_GT(pristine_.size(), 32u);
    }

    void TearDown() override { std::remove(path_.c_str()); }

    std::string path_;
    std::vector<std::uint8_t> pristine_;
};

TEST_F(SnapshotFuzzDeathTest, EverySeededBitFlipIsRejected)
{
    std::mt19937_64 rng(20260806);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t byteIndex = rng() % pristine_.size();
        const unsigned bitIndex = rng() % 8u;
        std::vector<std::uint8_t> corrupted = pristine_;
        corrupted[byteIndex] ^= static_cast<std::uint8_t>(1u << bitIndex);
        writeAll(path_, corrupted);
        EXPECT_EXIT((void)restoreSampleCheckpoint(path_),
                    ::testing::ExitedWithCode(1), "snapshot")
            << "flip survived at byte " << byteIndex << " bit "
            << bitIndex;
    }
}

TEST_F(SnapshotFuzzDeathTest, EverySeededTruncationIsRejected)
{
    std::mt19937_64 rng(20260807);
    for (int trial = 0; trial < 10; ++trial) {
        const std::size_t keep = rng() % pristine_.size();
        std::vector<std::uint8_t> truncated(
            pristine_.begin(),
            pristine_.begin() + static_cast<std::ptrdiff_t>(keep));
        writeAll(path_, truncated);
        EXPECT_EXIT((void)restoreSampleCheckpoint(path_),
                    ::testing::ExitedWithCode(1), "snapshot")
            << "truncation to " << keep << " bytes survived";
    }
}

TEST_F(SnapshotFuzzDeathTest, TrailingGarbageIsRejected)
{
    std::vector<std::uint8_t> padded = pristine_;
    padded.push_back(0);
    writeAll(path_, padded);
    EXPECT_EXIT((void)restoreSampleCheckpoint(path_),
                ::testing::ExitedWithCode(1), "snapshot");
}

// Rotation & newest-valid fallback -------------------------------
//
// Every checkpoint write rotates the previous file to `path.1`, so
// one earlier generation survives a corrupted newest snapshot; the
// resolver walks newest-to-oldest and skips invalid candidates.

TEST(SnapshotFallbackTest, TryFromFileReportsInsteadOfDying)
{
    std::string error;
    EXPECT_FALSE(SnapshotReader::tryFromFile(
                     tempPath("nonexistent.snap"), &error)
                     .has_value());
    EXPECT_NE(error.find("cannot open"), std::string::npos) << error;

    const std::string path = tempPath("tryfrom.snap");
    writeSampleCheckpoint(path);
    std::vector<std::uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x40;
    writeAll(path, bytes);
    EXPECT_FALSE(
        SnapshotReader::tryFromFile(path, &error).has_value());
    EXPECT_FALSE(error.empty());

    writeSampleCheckpoint(path);
    const auto reader = SnapshotReader::tryFromFile(path, &error);
    ASSERT_TRUE(reader.has_value()) << error;
    EXPECT_EQ(reader->context(), path);
    std::remove(path.c_str());
}

TEST(SnapshotFallbackTest, RotateKeepsOnePreviousGeneration)
{
    const std::string path = tempPath("rotate.snap");
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());

    rotateSnapshot(path); // No file yet: must be a quiet no-op.
    EXPECT_FALSE(fileExists(path + ".1"));

    writeSampleCheckpoint(path, 5);
    rotateSnapshot(path);
    EXPECT_FALSE(fileExists(path));
    EXPECT_TRUE(fileExists(path + ".1"));

    writeSampleCheckpoint(path, 5);
    const auto newest = openNewestValidSnapshot(path, nullptr);
    ASSERT_TRUE(newest.has_value());
    EXPECT_EQ(newest->context(), path);
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(SnapshotFallbackTest, CorruptNewestFallsBackToRotated)
{
    const std::string path = tempPath("fallback.snap");
    writeSampleCheckpoint(path, 5);
    rotateSnapshot(path);
    writeSampleCheckpoint(path, 5);

    // Flip a payload byte in the newest generation: its section CRC
    // trips, and the resolver must fall back to path.1.
    std::vector<std::uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x01;
    writeAll(path, bytes);

    std::string failure;
    const auto reader =
        openNewestValidSnapshot(path, nullptr, &failure);
    ASSERT_TRUE(reader.has_value()) << failure;
    EXPECT_EQ(reader->context(), path + ".1");
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(SnapshotFallbackTest, FingerprintMismatchIsSkippedAsInvalid)
{
    const std::string path = tempPath("fpmismatch.snap");
    std::remove((path + ".1").c_str());
    writeSampleCheckpoint(path, 5);

    AnalyticBackend expected(smallConfig(5));
    const std::uint64_t good = expected.checkpointFingerprint();
    const auto match = openNewestValidSnapshot(path, &good);
    ASSERT_TRUE(match.has_value());

    // A different seed yields a different config fingerprint: the
    // only candidate no longer counts as valid.
    AnalyticBackend other(smallConfig(6));
    std::string failure;
    const std::uint64_t wrong = other.checkpointFingerprint();
    EXPECT_FALSE(
        openNewestValidSnapshot(path, &wrong, &failure).has_value());
    EXPECT_NE(failure.find("fingerprint"), std::string::npos)
        << failure;
    std::remove(path.c_str());
}

TEST(SnapshotFallbackTest, ResumeWithCorruptNewestUsesRotated)
{
    const std::string path = tempPath("resumefallback.snap");

    // Two generations of the same run: a 6 h checkpoint rotated to
    // path.1, then a corrupted newest.
    writeSampleCheckpoint(path, 5);
    rotateSnapshot(path);
    writeSampleCheckpoint(path, 5);
    std::vector<std::uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x08;
    writeAll(path, bytes);

    CheckpointRuntime &runtime = CheckpointRuntime::global();
    runtime.resetForTest();
    CliOptions opts;
    opts.resumePath = path;
    runtime.configure(opts);

    AnalyticBackend device(smallConfig(5));
    const auto policy = makePolicy(basicSpec(), device);
    runtime.beginRun();
    const auto meta = runtime.tryRestore(device, *policy, 0);
    ASSERT_TRUE(meta.has_value());
    EXPECT_EQ(meta->simTime, secondsToTicks(6 * 3600.0));
    runtime.resetForTest();
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

TEST(CheckpointDeathTest, ResumeWithZeroValidOrdinalsDies)
{
    const std::string path = tempPath("novalid.snap");

    // Both generations corrupt: resolution must fail loudly at
    // configure time, never resume from garbage.
    writeSampleCheckpoint(path, 5);
    std::vector<std::uint8_t> bytes = readAll(path);
    bytes[bytes.size() / 2] ^= 0x10;
    writeAll(path, bytes);
    writeAll(path + ".1", bytes);

    EXPECT_EXIT(
        {
            CliOptions opts;
            opts.resumePath = path;
            CheckpointRuntime::global().configure(opts);
        },
        ::testing::ExitedWithCode(1),
        "no valid checkpoint ordinal found");
    std::remove(path.c_str());
    std::remove((path + ".1").c_str());
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Golden regression test for the paper's headline experiment (E10).
 *
 * Runs a scaled-down tab_headline in-process — the combined
 * mechanism (BCH-8, light detection, headroom rewrites, adaptive
 * scheduling) against the DRAM-style hourly SECDED baseline — and
 * pins the three headline ratios the abstract quotes (UE reduction,
 * scrub-write factor, energy reduction) against checked-in goldens.
 *
 * The run is deterministic (fixed seed, and results are independent
 * of thread count by the parallel-engine contract), so the golden
 * windows are tight: they catch any behavioural drift in the
 * backend, policies, or metric accounting, while the small
 * tolerance absorbs cross-platform floating-point variation in the
 * drift model's transcendentals. If a deliberate model change moves
 * these numbers, re-run and update the goldens in the same commit.
 *
 * Paper reference points (full-scale): 96.5% fewer UEs, 24.4x fewer
 * scrub writes, 37.8% less scrub energy than the basic baseline.
 */

#include <gtest/gtest.h>

#include "bench_util.hh"

namespace pcmscrub {
namespace {

using bench::RunResult;

constexpr std::uint64_t kLines = 1024;
constexpr std::uint64_t kSeed = 1;
constexpr Tick kHorizon = secondsToTicks(10 * 86400.0);

// Goldens measured at kLines/kSeed/kHorizon above (scaled-down E10;
// the full-scale figures land near the paper's quoted ratios). At
// this scale the combined mechanism is entirely UE-free over the
// horizon, so the UE reduction saturates at exactly 100%.
constexpr double kGoldenUeReductionPct = 100.0;
constexpr double kGoldenWriteFactor = 31.08;
constexpr double kGoldenEnergyReductionPct = 59.90;

struct HeadlineRatios
{
    double ueReductionPct;
    double writeFactor;
    double energyReductionPct;
};

HeadlineRatios
measure()
{
    const RunResult baseline = bench::runPolicy(
        "basic/secded/1h",
        bench::standardConfig(EccScheme::secdedX8(), kLines, kSeed),
        bench::baselineSpec(), kHorizon);
    const RunResult combined = bench::runPolicy(
        "combined/bch8",
        bench::standardConfig(EccScheme::bch(8), kLines, kSeed),
        bench::combinedSpec(), kHorizon);

    HeadlineRatios ratios;
    ratios.ueReductionPct = 100.0 *
        (1.0 - combined.uncorrectable() /
                   std::max(baseline.uncorrectable(), 1e-9));
    ratios.writeFactor =
        static_cast<double>(baseline.metrics.scrubRewrites) /
        std::max<double>(combined.metrics.scrubRewrites, 1.0);
    ratios.energyReductionPct = 100.0 *
        (1.0 - combined.metrics.energy.total() /
                   baseline.metrics.energy.total());
    return ratios;
}

TEST(GoldenHeadline, RatiosMatchCheckedInGoldens)
{
    const HeadlineRatios ratios = measure();

    EXPECT_NEAR(ratios.ueReductionPct, kGoldenUeReductionPct, 0.05);
    EXPECT_NEAR(ratios.writeFactor, kGoldenWriteFactor,
                0.01 * kGoldenWriteFactor);
    EXPECT_NEAR(ratios.energyReductionPct, kGoldenEnergyReductionPct,
                0.5);

    // The qualitative claims behind the paper's abstract must hold
    // outright, independent of golden drift.
    EXPECT_GT(ratios.ueReductionPct, 90.0);
    EXPECT_GT(ratios.writeFactor, 10.0);
    EXPECT_GT(ratios.energyReductionPct, 20.0);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for dense binary polynomials.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "gf/binpoly.hh"

namespace pcmscrub {
namespace {

BinPoly
randomPoly(Random &rng, unsigned max_degree)
{
    BinPoly p;
    const unsigned degree =
        static_cast<unsigned>(rng.uniformInt(max_degree + 1));
    for (unsigned i = 0; i <= degree; ++i)
        p.setCoeff(i, rng.bernoulli(0.5));
    return p;
}

TEST(BinPoly, ZeroPolynomial)
{
    BinPoly z;
    EXPECT_TRUE(z.isZero());
    EXPECT_EQ(z.degree(), -1);
    EXPECT_EQ(z.weight(), 0u);
    EXPECT_EQ(z.toString(), "0");
}

TEST(BinPoly, FromBitsAndDegree)
{
    const BinPoly p = BinPoly::fromBits(0x13); // x^4 + x + 1
    EXPECT_EQ(p.degree(), 4);
    EXPECT_TRUE(p.coeff(0));
    EXPECT_TRUE(p.coeff(1));
    EXPECT_FALSE(p.coeff(2));
    EXPECT_TRUE(p.coeff(4));
    EXPECT_EQ(p.weight(), 3u);
    EXPECT_EQ(p.toString(), "x^4 + x + 1");
}

TEST(BinPoly, MonomialAcrossWordBoundary)
{
    const BinPoly p = BinPoly::monomial(100);
    EXPECT_EQ(p.degree(), 100);
    EXPECT_EQ(p.weight(), 1u);
    EXPECT_TRUE(p.coeff(100));
}

TEST(BinPoly, AdditionIsXor)
{
    const BinPoly a = BinPoly::fromBits(0b1011);
    const BinPoly b = BinPoly::fromBits(0b1101);
    const BinPoly sum = a + b;
    EXPECT_EQ(sum, BinPoly::fromBits(0b0110));
    // Characteristic 2: p + p = 0.
    EXPECT_TRUE((a + a).isZero());
}

TEST(BinPoly, MultiplicationKnownProduct)
{
    // (x + 1)(x^2 + x + 1) = x^3 + 1 over GF(2).
    const BinPoly a = BinPoly::fromBits(0b11);
    const BinPoly b = BinPoly::fromBits(0b111);
    EXPECT_EQ(a * b, BinPoly::fromBits(0b1001));
}

TEST(BinPoly, MultiplicationByZeroAndOne)
{
    const BinPoly p = BinPoly::fromBits(0x35);
    EXPECT_TRUE((p * BinPoly()).isZero());
    EXPECT_EQ(p * BinPoly::fromBits(1), p);
}

TEST(BinPoly, DivModIdentityOnRandomInputs)
{
    Random rng(101);
    for (int trial = 0; trial < 300; ++trial) {
        const BinPoly a = randomPoly(rng, 180);
        BinPoly d = randomPoly(rng, 70);
        if (d.isZero())
            d = BinPoly::fromBits(0b11);
        const BinPoly q = a.div(d);
        const BinPoly r = a.mod(d);
        EXPECT_EQ(q * d + r, a) << "trial " << trial;
        EXPECT_LT(r.degree(), d.degree()) << "trial " << trial;
    }
}

TEST(BinPoly, ModByHigherDegreeIsIdentity)
{
    const BinPoly a = BinPoly::fromBits(0b101);
    const BinPoly d = BinPoly::monomial(10);
    EXPECT_EQ(a.mod(d), a);
    EXPECT_TRUE(a.div(d).isZero());
}

TEST(BinPoly, MultiplicationAcrossManyWords)
{
    // (x^130 + 1)(x^130 + 1) = x^260 + 1 in characteristic 2.
    BinPoly p = BinPoly::monomial(130) + BinPoly::fromBits(1);
    const BinPoly sq = p * p;
    EXPECT_EQ(sq.degree(), 260);
    EXPECT_EQ(sq.weight(), 2u);
    EXPECT_TRUE(sq.coeff(260));
    EXPECT_TRUE(sq.coeff(0));
}

TEST(BinPoly, SetCoeffGrowsAndTrims)
{
    BinPoly p;
    p.setCoeff(200, true);
    EXPECT_EQ(p.degree(), 200);
    p.setCoeff(200, false);
    EXPECT_TRUE(p.isZero());
}

TEST(BinPolyDeath, ModByZeroPanics)
{
    const BinPoly a = BinPoly::fromBits(0b101);
    EXPECT_DEATH(a.mod(BinPoly()), "modulo by zero");
    EXPECT_DEATH(a.div(BinPoly()), "division by zero");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the synthetic workload generators and trace capture.
 */

#include <map>

#include <gtest/gtest.h>

#include "sim/trace.hh"
#include "sim/workload.hh"

namespace pcmscrub {
namespace {

TEST(Workload, ArrivalsAreOrderedAtConfiguredRate)
{
    WorkloadConfig config;
    config.requestsPerSecond = 1e6;
    Workload workload(config, 3);
    Tick last = 0;
    const int draws = 50000;
    MemRequest req;
    for (int i = 0; i < draws; ++i) {
        req = workload.next();
        EXPECT_GE(req.arrival, last);
        last = req.arrival;
    }
    // 50k requests at 1M/s should span ~50 ms.
    const double seconds = ticksToSeconds(last);
    EXPECT_NEAR(seconds, 0.05, 0.01);
}

TEST(Workload, ReadFractionIsRespected)
{
    WorkloadConfig config;
    config.readFraction = 0.25;
    Workload workload(config, 4);
    int reads = 0;
    const int draws = 40000;
    for (int i = 0; i < draws; ++i)
        reads += workload.next().type == ReqType::Read;
    EXPECT_NEAR(reads / static_cast<double>(draws), 0.25, 0.02);
}

TEST(Workload, UniformCoversWorkingSet)
{
    WorkloadConfig config;
    config.kind = WorkloadKind::Uniform;
    config.workingSetLines = 16;
    Workload workload(config, 5);
    std::map<LineIndex, int> hits;
    for (int i = 0; i < 16000; ++i)
        ++hits[workload.next().line];
    EXPECT_EQ(hits.size(), 16u);
    for (const auto &[line, count] : hits)
        EXPECT_NEAR(count, 1000, 200) << "line " << line;
}

TEST(Workload, ZipfSkewsTowardHotLines)
{
    WorkloadConfig config;
    config.kind = WorkloadKind::Zipf;
    config.workingSetLines = 10000;
    config.zipfTheta = 0.9;
    Workload workload(config, 6);
    std::uint64_t hotHits = 0;
    const int draws = 50000;
    for (int i = 0; i < draws; ++i)
        hotHits += workload.next().line < 100; // Top 1%.
    EXPECT_GT(hotHits, draws / 5);
}

TEST(Workload, StreamingSweepsSequentially)
{
    WorkloadConfig config;
    config.kind = WorkloadKind::Streaming;
    config.workingSetLines = 8;
    Workload workload(config, 7);
    for (int sweep = 0; sweep < 3; ++sweep) {
        for (LineIndex expect = 0; expect < 8; ++expect)
            EXPECT_EQ(workload.next().line, expect);
    }
}

TEST(Workload, WriteBurstStaysInsideWindow)
{
    WorkloadConfig config;
    config.kind = WorkloadKind::WriteBurst;
    config.workingSetLines = 100000;
    config.burstLines = 64;
    config.burstLength = 1000;
    Workload workload(config, 8);
    // First burst: all requests within one 64-line window.
    const LineIndex first = workload.next().line;
    LineIndex lo = first;
    LineIndex hi = first;
    for (int i = 1; i < 1000; ++i) {
        const LineIndex line = workload.next().line;
        lo = std::min(lo, line);
        hi = std::max(hi, line);
    }
    EXPECT_LT(hi - lo, 64u);
}

TEST(WorkloadDeath, BadConfigIsFatal)
{
    WorkloadConfig config;
    config.requestsPerSecond = 0.0;
    EXPECT_EXIT(Workload{config}, ::testing::ExitedWithCode(1),
                "rate must be positive");
    WorkloadConfig bad2;
    bad2.readFraction = 1.5;
    EXPECT_EXIT(Workload{bad2}, ::testing::ExitedWithCode(1),
                "read fraction");
}

TEST(Trace, CaptureAndStats)
{
    WorkloadConfig config;
    config.readFraction = 0.5;
    Workload workload(config, 9);
    const Trace trace = Trace::capture(workload, 1000);
    EXPECT_EQ(trace.size(), 1000u);
    EXPECT_GT(trace.span(), 0u);
    EXPECT_EQ(trace.countOf(ReqType::Read) +
              trace.countOf(ReqType::Write), 1000u);
}

TEST(Trace, SaveLoadRoundTrip)
{
    WorkloadConfig config;
    Workload workload(config, 10);
    const Trace original = Trace::capture(workload, 200);
    const std::string path = ::testing::TempDir() + "trace_test.txt";
    ASSERT_TRUE(original.save(path));
    const Trace loaded = Trace::load(path);
    ASSERT_EQ(loaded.size(), original.size());
    for (std::size_t i = 0; i < loaded.size(); ++i) {
        EXPECT_EQ(loaded[i].arrival, original[i].arrival);
        EXPECT_EQ(loaded[i].line, original[i].line);
        EXPECT_EQ(loaded[i].type, original[i].type);
    }
    std::remove(path.c_str());
}

TEST(TraceDeath, MissingFileIsFatal)
{
    EXPECT_EXIT(Trace::load("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open trace");
}

TEST(TraceDeath, OutOfOrderAppendPanics)
{
    Trace trace;
    MemRequest a;
    a.arrival = 100;
    trace.append(a);
    MemRequest b;
    b.arrival = 50;
    EXPECT_DEATH(trace.append(b), "ordered");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * The crash-safety contract: a run that is killed at an arbitrary
 * wake boundary, checkpointed, and resumed into freshly-constructed
 * objects finishes bit-identical to the uninterrupted run — every
 * ScrubMetrics counter (including floating-point energy sums), the
 * fault-injector bookkeeping, and the final per-line device state.
 *
 * Both backends are driven through full pipelines (combined policy,
 * demand writes, fault campaign) at 1 and 4 threads, with the kill
 * point chosen pseudo-randomly per seed. Resuming at a different
 * thread count than the snapshot was taken at must also match: PR 2's
 * determinism contract makes thread count invisible to results, and
 * the snapshot format must not leak it back in.
 *
 * The CheckpointRuntime itself is exercised end to end: periodic
 * `--checkpoint-every` snapshots from runCheckpointed() restore to
 * the identical final state, and a delivered SIGINT flushes a final
 * snapshot and exits 0 — with the flushed snapshot proven resumable
 * afterwards.
 */

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/random.hh"
#include "common/serialize.hh"
#include "common/thread_pool.hh"
#include "faults/fault_injector.hh"
#include "mem/ppr.hh"
#include "ras/controlled_scrub.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"
#include "scrub/factory.hh"
#include "snapshot/checkpoint.hh"
#include "snapshot/snapshot.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);
constexpr Tick kDay = secondsToTicks(86400.0);
constexpr std::uint64_t kNoStop = ~0ull;

std::string
tempPath(const std::string &name)
{
    return ::testing::TempDir() + "pcmscrub_" + name;
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Restore global runtime + pool so other tests see the defaults. */
class ResumeTest : public ::testing::Test
{
  protected:
    void TearDown() override
    {
        ThreadPool::global().resize(1);
        CheckpointRuntime::global().resetForTest();
    }
};

class CellResume : public ResumeTest {};
class AnalyticResume : public ResumeTest {};
class RuntimeResume : public ResumeTest {};

void
expectEnergyEqual(const EnergyAccount &a, const EnergyAccount &b)
{
    for (unsigned c = 0;
         c < static_cast<unsigned>(EnergyCategory::NumCategories); ++c) {
        const auto category = static_cast<EnergyCategory>(c);
        EXPECT_EQ(a.get(category), b.get(category))
            << "energy category " << energyCategoryName(category);
    }
}

void
expectMetricsEqual(const ScrubMetrics &a, const ScrubMetrics &b)
{
    EXPECT_EQ(a.linesChecked, b.linesChecked);
    EXPECT_EQ(a.lightDetects, b.lightDetects);
    EXPECT_EQ(a.eccChecks, b.eccChecks);
    EXPECT_EQ(a.fullDecodes, b.fullDecodes);
    EXPECT_EQ(a.marginScans, b.marginScans);
    EXPECT_EQ(a.scrubRewrites, b.scrubRewrites);
    EXPECT_EQ(a.preventiveRewrites, b.preventiveRewrites);
    EXPECT_EQ(a.piggybackRewrites, b.piggybackRewrites);
    EXPECT_EQ(a.correctedErrors, b.correctedErrors);
    EXPECT_EQ(a.scrubUncorrectable, b.scrubUncorrectable);
    EXPECT_EQ(a.demandUncorrectable, b.demandUncorrectable);
    EXPECT_EQ(a.cellsWornOut, b.cellsWornOut);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
    EXPECT_EQ(a.detectorMisses, b.detectorMisses);
    EXPECT_EQ(a.miscorrections, b.miscorrections);
    EXPECT_EQ(a.ueRetries, b.ueRetries);
    EXPECT_EQ(a.ueRetryResolved, b.ueRetryResolved);
    EXPECT_EQ(a.ueEcpRepaired, b.ueEcpRepaired);
    EXPECT_EQ(a.uePprRemapped, b.uePprRemapped);
    EXPECT_EQ(a.pprSparesRemaining, b.pprSparesRemaining);
    EXPECT_EQ(a.ueRetired, b.ueRetired);
    EXPECT_EQ(a.ueSlcFallbacks, b.ueSlcFallbacks);
    EXPECT_EQ(a.ueSurfaced, b.ueSurfaced);
    EXPECT_EQ(a.sparesRemaining, b.sparesRemaining);
    EXPECT_EQ(a.capacityLostBits, b.capacityLostBits);
    expectEnergyEqual(a.energy, b.energy);
}

void
expectInjectorEqual(const FaultInjectorStats &a,
                    const FaultInjectorStats &b)
{
    EXPECT_EQ(a.stuckCellsInjected, b.stuckCellsInjected);
    EXPECT_EQ(a.transientFlips, b.transientFlips);
    EXPECT_EQ(a.bursts, b.bursts);
    EXPECT_EQ(a.miscorrections, b.miscorrections);
    EXPECT_EQ(a.metadataCorruptions, b.metadataCorruptions);
}

/** Deterministic kill point strictly inside (0, totalWakes). */
std::uint64_t
killPoint(std::uint64_t seed, std::uint64_t totalWakes)
{
    std::mt19937_64 rng(seed * 0x9e3779b97f4a7c15ull + 1);
    return 1 + rng() % (totalWakes - 1);
}

// Cell-accurate backend -------------------------------------------

/**
 * One full cell-backend pipeline, packaged so it can be torn down
 * mid-run and rebuilt from a snapshot: combined policy, Poisson
 * demand writes (the harness-private state the extra-state hooks
 * must carry), and a fault campaign. Everything derives from `seed`.
 */
struct CellSim
{
    explicit CellSim(std::uint64_t seed)
        : demand(seed + 1)
    {
        config.lines = 160;
        config.scheme = EccScheme::bch(4);
        config.ecpEntries = 4;
        config.seed = seed;
        config.degradation.enabled = true;
        config.degradation.maxRetries = 2;
        config.degradation.spareLines = 64;
        config.degradation.slcFallback = true;
        device = std::make_unique<CellBackend>(config);

        FaultCampaignConfig campaign;
        campaign.stuckPerWrite = 0.05;
        campaign.disturbFlipsPerRead = 0.1;
        campaign.burstProbPerRead = 0.02;
        campaign.burstBits = 6;
        campaign.miscorrectionProb = 0.01;
        campaign.metadataCorruptionProb = 0.01;
        campaign.seed = seed * 31 + 5;
        injector = std::make_unique<FaultInjector>(campaign);
        device->setFaultInjector(injector.get());

        PolicySpec spec;
        spec.kind = PolicyKind::Combined;
        spec.targetLineUeProb = 1e-7;
        spec.rewriteThreshold = 2;
        spec.rewriteHeadroom = 2;
        spec.linesPerRegion = 16;
        policy = makePolicy(spec, *device);

        nextWriteSeconds = demand.exponential(writeRate());
    }

    double writeRate() const
    {
        return 2e-5 * static_cast<double>(config.lines);
    }

    /** Harness state beyond backend + policy. */
    void save(SnapshotSink &sink) const
    {
        saveRandom(sink, demand);
        sink.f64(nextWriteSeconds);
    }

    void load(SnapshotSource &source)
    {
        loadRandom(source, demand);
        nextWriteSeconds = source.f64();
    }

    /**
     * Advance to `horizon`, or stop right after wake number
     * `stopAfterWakes` (a checkpointable boundary). Returns the
     * cumulative wake count.
     */
    std::uint64_t run(Tick horizon, std::uint64_t wakes,
                      std::uint64_t stopAfterWakes)
    {
        while (true) {
            const Tick scrubAt = policy->nextWake();
            const Tick writeAt = secondsToTicks(nextWriteSeconds);
            if (scrubAt > horizon && writeAt > horizon)
                break;
            if (writeAt <= scrubAt) {
                device->demandWrite(demand.uniformInt(config.lines),
                                    writeAt);
                nextWriteSeconds += demand.exponential(writeRate());
            } else {
                policy->wake(*device, scrubAt);
                lastWakeTick = scrubAt;
                if (++wakes == stopAfterWakes)
                    return wakes;
            }
        }
        return wakes;
    }

    CellBackendConfig config;
    std::unique_ptr<CellBackend> device;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ScrubPolicy> policy;
    Random demand;
    double nextWriteSeconds = 0.0;
    Tick lastWakeTick = 0;
};

/** Complete observable outcome of a cell-backend run. */
struct CellOutcome
{
    ScrubMetrics metrics;
    FaultInjectorStats faults;
    std::vector<BitVector> intended;
    std::vector<Tick> lastWrite;
    std::vector<std::uint64_t> lineWrites;
    std::vector<unsigned> trueErrors;
    std::vector<unsigned> stuckCells;
    std::vector<bool> slc;
};

CellOutcome
captureCell(const CellSim &sim, Tick horizon)
{
    CellOutcome out;
    out.metrics = sim.device->metrics();
    out.faults = sim.injector->stats();
    for (LineIndex line = 0; line < sim.device->lineCount(); ++line) {
        const Line &cells = sim.device->array().line(line);
        out.intended.push_back(cells.intendedWord());
        out.lastWrite.push_back(cells.lastWriteTick());
        out.lineWrites.push_back(cells.lineWrites());
        out.trueErrors.push_back(
            cells.trueBitErrors(horizon, sim.device->array().model()));
        out.stuckCells.push_back(cells.stuckCellCount());
        out.slc.push_back(cells.slcMode());
    }
    return out;
}

void
expectCellOutcomeEqual(const CellOutcome &a, const CellOutcome &b)
{
    expectMetricsEqual(a.metrics, b.metrics);
    expectInjectorEqual(a.faults, b.faults);
    ASSERT_EQ(a.intended.size(), b.intended.size());
    for (std::size_t line = 0; line < a.intended.size(); ++line) {
        EXPECT_EQ(a.intended[line], b.intended[line]) << "line " << line;
        EXPECT_EQ(a.lastWrite[line], b.lastWrite[line])
            << "line " << line;
        EXPECT_EQ(a.lineWrites[line], b.lineWrites[line])
            << "line " << line;
        EXPECT_EQ(a.trueErrors[line], b.trueErrors[line])
            << "line " << line;
        EXPECT_EQ(a.stuckCells[line], b.stuckCells[line])
            << "line " << line;
        EXPECT_EQ(a.slc[line], b.slc[line]) << "line " << line;
    }
}

/**
 * Run to `horizon` without interruption at `threads`; reports the
 * total wake count so the interrupted run can pick a kill point.
 */
CellOutcome
straightCell(std::uint64_t seed, unsigned threads, Tick horizon,
             std::uint64_t &totalWakes)
{
    ThreadPool::global().resize(threads);
    CellSim sim(seed);
    totalWakes = sim.run(horizon, 0, kNoStop);
    return captureCell(sim, horizon);
}

/**
 * Kill the run at wake `killAt` (checkpoint + destroy every object),
 * rebuild from scratch at `threadsAfter`, restore the snapshot, and
 * finish.
 */
CellOutcome
resumedCell(std::uint64_t seed, unsigned threadsBefore,
            unsigned threadsAfter, Tick horizon, std::uint64_t killAt,
            std::uint64_t expectedWakes)
{
    const std::string path = tempPath("cell_resume.snap");

    ThreadPool::global().resize(threadsBefore);
    {
        CellSim sim(seed);
        const std::uint64_t wakes = sim.run(horizon, 0, killAt);
        EXPECT_EQ(wakes, killAt);
        writeCheckpoint(path, *sim.device, *sim.policy,
                        CheckpointMeta{0, sim.lastWakeTick, wakes,
                                       sim.policy->name()},
                        [&](SnapshotSink &sink) { sim.save(sink); });
        // `sim` dies here: the resumed run starts from cold objects,
        // exactly like a new process would.
    }

    ThreadPool::global().resize(threadsAfter);
    CellSim sim(seed);
    const SnapshotReader reader = SnapshotReader::fromFile(path);
    const CheckpointMeta meta =
        readCheckpoint(reader, *sim.device, *sim.policy,
                       [&](SnapshotSource &source) { sim.load(source); });
    EXPECT_EQ(meta.runOrdinal, 0u);
    EXPECT_EQ(meta.wakes, killAt);
    EXPECT_EQ(meta.policyName, sim.policy->name());

    const std::uint64_t wakes = sim.run(horizon, meta.wakes, kNoStop);
    EXPECT_EQ(wakes, expectedWakes);
    std::remove(path.c_str());
    return captureCell(sim, horizon);
}

TEST_F(CellResume, KillAndResumeIsBitIdentical)
{
    const Tick horizon = 2 * kDay;
    for (const std::uint64_t seed : {3ull, 11ull}) {
        std::uint64_t totalWakes = 0;
        const CellOutcome straight =
            straightCell(seed, 1, horizon, totalWakes);
        ASSERT_GE(totalWakes, 2u);
        const std::uint64_t killAt = killPoint(seed, totalWakes);
        for (const unsigned threads : {1u, 4u}) {
            SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                         std::to_string(threads) + ", killed at wake " +
                         std::to_string(killAt) + "/" +
                         std::to_string(totalWakes));
            expectCellOutcomeEqual(
                straight, resumedCell(seed, threads, threads, horizon,
                                      killAt, totalWakes));
        }
    }
}

TEST_F(CellResume, SnapshotAtOneThreadResumesAtFour)
{
    const Tick horizon = 2 * kDay;
    std::uint64_t totalWakes = 0;
    const CellOutcome straight = straightCell(7, 1, horizon, totalWakes);
    ASSERT_GE(totalWakes, 2u);
    expectCellOutcomeEqual(
        straight, resumedCell(7, 1, 4, horizon,
                              killPoint(7, totalWakes), totalWakes));
}

// Analytic backend ------------------------------------------------

/** The analytic pipeline: built-in demand model, fault campaign. */
struct AnalyticSim
{
    explicit AnalyticSim(std::uint64_t seed)
    {
        config.lines = 1024;
        config.scheme = EccScheme::bch(8);
        config.demand.writesPerLinePerSecond = 1e-5;
        config.demand.readsPerLinePerSecond = 1e-4;
        config.seed = seed;
        device = std::make_unique<AnalyticBackend>(config);

        FaultCampaignConfig campaign;
        campaign.disturbFlipsPerRead = 0.05;
        campaign.burstProbPerRead = 0.01;
        campaign.burstBits = 4;
        campaign.miscorrectionProb = 0.005;
        campaign.seed = seed * 17 + 3;
        injector = std::make_unique<FaultInjector>(campaign);
        device->setFaultInjector(injector.get());

        PolicySpec spec;
        spec.kind = PolicyKind::Combined;
        spec.targetLineUeProb = 1e-7;
        spec.rewriteHeadroom = 2;
        spec.linesPerRegion = 64;
        policy = makePolicy(spec, *device);
    }

    std::uint64_t run(Tick horizon, std::uint64_t wakes,
                      std::uint64_t stopAfterWakes)
    {
        while (true) {
            const Tick at = policy->nextWake();
            if (at > horizon)
                break;
            policy->wake(*device, at);
            lastWakeTick = at;
            if (++wakes == stopAfterWakes)
                return wakes;
        }
        return wakes;
    }

    AnalyticConfig config;
    std::unique_ptr<AnalyticBackend> device;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ScrubPolicy> policy;
    Tick lastWakeTick = 0;
};

struct AnalyticOutcome
{
    ScrubMetrics metrics;
    FaultInjectorStats faults;
    std::vector<unsigned> trueErrors;
};

AnalyticOutcome
captureAnalytic(const AnalyticSim &sim, Tick horizon)
{
    AnalyticOutcome out;
    out.metrics = sim.device->metrics();
    out.faults = sim.injector->stats();
    for (LineIndex line = 0; line < sim.device->lineCount(); ++line)
        out.trueErrors.push_back(sim.device->trueErrors(line, horizon));
    return out;
}

void
expectAnalyticOutcomeEqual(const AnalyticOutcome &a,
                           const AnalyticOutcome &b)
{
    expectMetricsEqual(a.metrics, b.metrics);
    expectInjectorEqual(a.faults, b.faults);
    ASSERT_EQ(a.trueErrors.size(), b.trueErrors.size());
    for (std::size_t line = 0; line < a.trueErrors.size(); ++line)
        EXPECT_EQ(a.trueErrors[line], b.trueErrors[line])
            << "line " << line;
}

AnalyticOutcome
resumedAnalytic(std::uint64_t seed, unsigned threads, Tick horizon,
                std::uint64_t killAt, std::uint64_t expectedWakes)
{
    const std::string path = tempPath("analytic_resume.snap");

    ThreadPool::global().resize(threads);
    {
        AnalyticSim sim(seed);
        const std::uint64_t wakes = sim.run(horizon, 0, killAt);
        EXPECT_EQ(wakes, killAt);
        writeCheckpoint(path, *sim.device, *sim.policy,
                        CheckpointMeta{0, sim.lastWakeTick, wakes,
                                       sim.policy->name()});
    }

    AnalyticSim sim(seed);
    const SnapshotReader reader = SnapshotReader::fromFile(path);
    const CheckpointMeta meta =
        readCheckpoint(reader, *sim.device, *sim.policy);
    EXPECT_EQ(meta.wakes, killAt);

    const std::uint64_t wakes = sim.run(horizon, meta.wakes, kNoStop);
    EXPECT_EQ(wakes, expectedWakes);
    std::remove(path.c_str());
    return captureAnalytic(sim, horizon);
}

TEST_F(AnalyticResume, KillAndResumeIsBitIdentical)
{
    const Tick horizon = 4 * kDay;
    for (const std::uint64_t seed : {2ull, 19ull}) {
        ThreadPool::global().resize(1);
        AnalyticSim straightSim(seed);
        const std::uint64_t totalWakes =
            straightSim.run(horizon, 0, kNoStop);
        ASSERT_GE(totalWakes, 2u);
        const AnalyticOutcome straight =
            captureAnalytic(straightSim, horizon);
        const std::uint64_t killAt = killPoint(seed, totalWakes);
        for (const unsigned threads : {1u, 4u}) {
            SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                         std::to_string(threads) + ", killed at wake " +
                         std::to_string(killAt) + "/" +
                         std::to_string(totalWakes));
            expectAnalyticOutcomeEqual(
                straight, resumedAnalytic(seed, threads, horizon,
                                          killAt, totalWakes));
        }
    }
}

// RAS-managed runs ------------------------------------------------

RasSettings
rasResumeSettings()
{
    RasSettings ras;
    ras.enabled = true;
    ras.minIntervalS = 1800.0;
    ras.maxIntervalS = 6.0 * 3600.0;
    ras.sloUePerLineDay = 5e-4;
    ras.sampleEveryS = 6.0 * 3600.0;
    ras.stepFactor = 2.0;
    ras.hysteresis = 0.25;
    ras.linesPerRegion = 64;
    return ras;
}

/**
 * A closed-loop pipeline: auto-tuning ControlledScrub over a strong
 * sweep on a drift-heavy BCH-4 device with the PPR rung and spare
 * pool provisioned. Kill/resume must carry the controller loop
 * state, the sample schedule, the PPR/spare tables, and the region
 * telemetry counters — any drift there changes later controller
 * decisions and shows up as a metrics mismatch.
 */
struct RasSim
{
    explicit RasSim(std::uint64_t seed)
    {
        config.lines = 512;
        config.scheme = EccScheme::bch(4);
        config.demand.writesPerLinePerSecond = 0.0;
        config.demand.readsPerLinePerSecond = 1e-4;
        config.seed = seed;
        config.degradation.enabled = true;
        config.degradation.maxRetries = 0;
        config.degradation.ecpRepair = false;
        // Provision row/spare budgets the run cannot exhaust: which
        // line wins the *last* row of a contended pool is scheduling-
        // dependent (see PprRemapTable), and this test asserts
        // bit-identity across thread counts. Exhaustion fall-through
        // is covered serially in ppr_ladder_test.
        config.degradation.pprSpareRows = 512;
        config.degradation.pprUeThreshold = 1;
        config.degradation.spareLines = 512;
        device = std::make_unique<AnalyticBackend>(config);
        policy = std::make_unique<ControlledScrub>(
            std::make_unique<StrongEccScrub>(secondsToTicks(3600.0)),
            *device, rasResumeSettings(), /*auto_tune=*/true,
            "resume");
    }

    std::uint64_t run(Tick horizon, std::uint64_t wakes,
                      std::uint64_t stopAfterWakes)
    {
        while (true) {
            const Tick at = policy->nextWake();
            if (at > horizon)
                break;
            policy->wake(*device, at);
            lastWakeTick = at;
            if (++wakes == stopAfterWakes)
                return wakes;
        }
        return wakes;
    }

    AnalyticConfig config;
    std::unique_ptr<AnalyticBackend> device;
    std::unique_ptr<ControlledScrub> policy;
    Tick lastWakeTick = 0;
};

struct RasOutcome
{
    ScrubMetrics metrics;
    double intervalS = 0.0;
    unsigned calmSamples = 0;
    std::uint64_t pprRemapped = 0;
    std::vector<bool> remapped;
    std::vector<RegionCounters> regions;
};

RasOutcome
captureRas(const RasSim &sim)
{
    RasOutcome out;
    out.metrics = sim.device->metrics();
    out.intervalS = sim.policy->controlPlane().scrubIntervalS();
    out.calmSamples = sim.policy->controller().calmSamples();
    out.pprRemapped = sim.device->pprTable().remappedCount();
    for (LineIndex line = 0; line < sim.device->lineCount(); ++line)
        out.remapped.push_back(
            sim.device->pprTable().isRemapped(line));
    const RegionTelemetry &telemetry =
        sim.policy->controlPlane().telemetry();
    for (std::uint64_t r = 0; r < telemetry.regionCount(); ++r)
        out.regions.push_back(telemetry.region(r));
    return out;
}

void
expectRasOutcomeEqual(const RasOutcome &a, const RasOutcome &b)
{
    expectMetricsEqual(a.metrics, b.metrics);
    EXPECT_EQ(a.intervalS, b.intervalS);
    EXPECT_EQ(a.calmSamples, b.calmSamples);
    EXPECT_EQ(a.pprRemapped, b.pprRemapped);
    EXPECT_EQ(a.remapped, b.remapped);
    ASSERT_EQ(a.regions.size(), b.regions.size());
    for (std::size_t r = 0; r < a.regions.size(); ++r) {
        EXPECT_EQ(a.regions[r].correctedErrors,
                  b.regions[r].correctedErrors) << "region " << r;
        EXPECT_EQ(a.regions[r].uncorrectable,
                  b.regions[r].uncorrectable) << "region " << r;
        EXPECT_EQ(a.regions[r].ladderEscalations,
                  b.regions[r].ladderEscalations) << "region " << r;
        EXPECT_EQ(a.regions[r].scrubWrites,
                  b.regions[r].scrubWrites) << "region " << r;
        EXPECT_EQ(a.regions[r].energyPj, b.regions[r].energyPj)
            << "region " << r;
    }
}

RasOutcome
resumedRas(std::uint64_t seed, unsigned threadsBefore,
           unsigned threadsAfter, Tick horizon, std::uint64_t killAt,
           std::uint64_t expectedWakes)
{
    const std::string path = tempPath("ras_resume.snap");

    ThreadPool::global().resize(threadsBefore);
    {
        RasSim sim(seed);
        const std::uint64_t wakes = sim.run(horizon, 0, killAt);
        EXPECT_EQ(wakes, killAt);
        writeCheckpoint(path, *sim.device, *sim.policy,
                        CheckpointMeta{0, sim.lastWakeTick, wakes,
                                       sim.policy->name()});
    }

    ThreadPool::global().resize(threadsAfter);
    RasSim sim(seed);
    const SnapshotReader reader = SnapshotReader::fromFile(path);
    const CheckpointMeta meta =
        readCheckpoint(reader, *sim.device, *sim.policy);
    EXPECT_EQ(meta.wakes, killAt);
    EXPECT_EQ(meta.policyName, sim.policy->name());

    const std::uint64_t wakes = sim.run(horizon, meta.wakes, kNoStop);
    EXPECT_EQ(wakes, expectedWakes);
    std::remove(path.c_str());
    return captureRas(sim);
}

class RasResume : public ResumeTest {};

TEST_F(RasResume, ControlledKillAndResumeIsBitIdentical)
{
    const Tick horizon = 10 * kDay;
    ThreadPool::global().resize(1);
    RasSim straightSim(23);
    const std::uint64_t totalWakes =
        straightSim.run(horizon, 0, kNoStop);
    ASSERT_GE(totalWakes, 2u);
    const RasOutcome straight = captureRas(straightSim);

    // The scenario must actually exercise what it claims to protect:
    // the controller moved the interval and the PPR rung fired.
    EXPECT_NE(straight.intervalS, 3600.0);
    EXPECT_GT(straight.pprRemapped, 0u);
    // ... without ever contending for the last row/spare, which is
    // the one scheduling-dependent allocation (see PprRemapTable).
    EXPECT_GT(straight.metrics.pprSparesRemaining, 0u);
    EXPECT_GT(straight.metrics.sparesRemaining, 0u);

    const std::uint64_t killAt = killPoint(23, totalWakes);
    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("threads " + std::to_string(threads) +
                     ", killed at wake " + std::to_string(killAt) +
                     "/" + std::to_string(totalWakes));
        expectRasOutcomeEqual(
            straight, resumedRas(23, threads, threads, horizon,
                                 killAt, totalWakes));
    }

    // Thread count changing across the kill must be invisible too.
    expectRasOutcomeEqual(straight,
                          resumedRas(23, 1, 4, horizon, killAt,
                                     totalWakes));
}

/** Cell-accurate variant: stuck-cell wear drives the PPR rung. */
struct RasCellSim
{
    explicit RasCellSim(std::uint64_t seed)
    {
        config.lines = 96;
        config.scheme = EccScheme::bch(4);
        config.ecpEntries = 0;
        config.seed = seed;
        config.degradation.enabled = true;
        config.degradation.maxRetries = 0;
        // PPR remap is one-shot per address, so one row per line
        // caps demand at capacity and no line can lose a scheduling
        // race for the last row. Retirement can repeat per address
        // (~450 over this horizon), so the spare pool gets a >2x
        // margin instead (same rationale as RasSim above).
        config.degradation.pprSpareRows = 96;
        config.degradation.pprUeThreshold = 1;
        config.degradation.spareLines = 1024;
        device = std::make_unique<CellBackend>(config);

        FaultCampaignConfig campaign;
        campaign.stuckPerWrite = 1.0;
        campaign.seed = seed * 13 + 1;
        injector = std::make_unique<FaultInjector>(campaign);
        device->setFaultInjector(injector.get());

        policy = std::make_unique<ControlledScrub>(
            std::make_unique<StrongEccScrub>(secondsToTicks(3600.0)),
            *device, rasResumeSettings(), /*auto_tune=*/true,
            "cell_resume");
    }

    std::uint64_t run(Tick horizon, std::uint64_t wakes,
                      std::uint64_t stopAfterWakes)
    {
        while (true) {
            const Tick at = policy->nextWake();
            if (at > horizon)
                break;
            policy->wake(*device, at);
            lastWakeTick = at;
            if (++wakes == stopAfterWakes)
                return wakes;
        }
        return wakes;
    }

    CellBackendConfig config;
    std::unique_ptr<CellBackend> device;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<ControlledScrub> policy;
    Tick lastWakeTick = 0;
};

TEST_F(RasResume, CellControlledKillAndResumeIsBitIdentical)
{
    const Tick horizon = 4 * kDay;
    ThreadPool::global().resize(1);
    RasCellSim straightSim(29);
    const std::uint64_t totalWakes =
        straightSim.run(horizon, 0, kNoStop);
    ASSERT_GE(totalWakes, 2u);
    const ScrubMetrics straight = straightSim.device->metrics();
    const double straightInterval =
        straightSim.policy->controlPlane().scrubIntervalS();
    EXPECT_GT(straight.uePprRemapped, 0u);
    // Retirement is not one-shot (a retired line can fail and retire
    // again), so the pool must out-provision total demand — the last
    // contended spare is the one scheduling-dependent allocation.
    EXPECT_GT(straight.sparesRemaining, 0u);

    const std::uint64_t killAt = killPoint(29, totalWakes);
    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        const std::string path = tempPath("ras_cell_resume.snap");
        ThreadPool::global().resize(threads);
        {
            RasCellSim sim(29);
            const std::uint64_t wakes = sim.run(horizon, 0, killAt);
            EXPECT_EQ(wakes, killAt);
            writeCheckpoint(path, *sim.device, *sim.policy,
                            CheckpointMeta{0, sim.lastWakeTick,
                                           wakes,
                                           sim.policy->name()});
        }
        RasCellSim sim(29);
        const SnapshotReader reader = SnapshotReader::fromFile(path);
        const CheckpointMeta meta =
            readCheckpoint(reader, *sim.device, *sim.policy);
        const std::uint64_t wakes =
            sim.run(horizon, meta.wakes, kNoStop);
        EXPECT_EQ(wakes, totalWakes);
        expectMetricsEqual(straight, sim.device->metrics());
        EXPECT_EQ(straightInterval,
                  sim.policy->controlPlane().scrubIntervalS());
        std::remove(path.c_str());
    }
}

TEST_F(RasResume, TelemetryAttachMismatchIsRejected)
{
    // The backend section records whether telemetry counters were
    // attached; restoring into a mismatched topology must be refused
    // as corrupt state, not silently dropped or misparsed.
    AnalyticConfig config;
    config.lines = 64;
    config.scheme = EccScheme::bch(4);
    config.seed = 3;

    SnapshotSink withTelemetry;
    {
        AnalyticBackend backend(config);
        StrongEccScrub policy(secondsToTicks(3600.0));
        RasControlPlane plane(backend, policy, rasResumeSettings());
        backend.checkpointSave(withTelemetry);
    }
    {
        AnalyticBackend bare(config);
        SnapshotSource source(withTelemetry.bytes().data(),
                              withTelemetry.bytes().size(),
                              "mismatch");
        EXPECT_EXIT(bare.checkpointLoad(source),
                    ::testing::ExitedWithCode(1),
                    "no telemetry sink is attached");
    }

    SnapshotSink bareSink;
    {
        AnalyticBackend bare(config);
        bare.checkpointSave(bareSink);
    }
    AnalyticBackend backend(config);
    StrongEccScrub policy(secondsToTicks(3600.0));
    RasControlPlane plane(backend, policy, rasResumeSettings());
    SnapshotSource source(bareSink.bytes().data(),
                          bareSink.bytes().size(), "mismatch");
    EXPECT_EXIT(backend.checkpointLoad(source),
                ::testing::ExitedWithCode(1),
                "snapshot has no telemetry state");
}

// CheckpointRuntime end to end ------------------------------------

AnalyticConfig
runtimeConfig()
{
    AnalyticConfig config;
    config.lines = 512;
    config.scheme = EccScheme::bch(4);
    config.demand.writesPerLinePerSecond = 1e-5;
    config.seed = 99;
    return config;
}

PolicySpec
runtimeSpec()
{
    PolicySpec spec;
    spec.kind = PolicyKind::Basic;
    spec.interval = kHour / 2;
    return spec;
}

TEST_F(RuntimeResume, PeriodicCheckpointRestoresToIdenticalEnd)
{
    const std::string path = tempPath("runtime_periodic.snap");
    const Tick horizon = 6 * kHour;
    CheckpointRuntime &runtime = CheckpointRuntime::global();

    // Uninterrupted reference (runtime unconfigured: runCheckpointed
    // degrades to a plain wake loop).
    runtime.resetForTest();
    AnalyticBackend reference(runtimeConfig());
    const auto referencePolicy = makePolicy(runtimeSpec(), reference);
    const std::uint64_t referenceWakes =
        runCheckpointed(reference, *referencePolicy, horizon);
    EXPECT_GT(referenceWakes, 0u);

    // Same run with hourly periodic snapshots: identical results,
    // and the last periodic snapshot is left on disk.
    runtime.resetForTest();
    CliOptions periodic;
    periodic.checkpointPath = path;
    periodic.checkpointEverySimHours = 1.0;
    runtime.configure(periodic);
    AnalyticBackend checkpointed(runtimeConfig());
    const auto checkpointedPolicy =
        makePolicy(runtimeSpec(), checkpointed);
    EXPECT_EQ(runCheckpointed(checkpointed, *checkpointedPolicy, horizon),
              referenceWakes);
    expectMetricsEqual(reference.metrics(), checkpointed.metrics());
    ASSERT_TRUE(fileExists(path));

    // Resume from that snapshot into cold objects and finish: the
    // wake total and every counter match the uninterrupted run.
    runtime.resetForTest();
    CliOptions resume;
    resume.resumePath = path;
    runtime.configure(resume);
    AnalyticBackend resumed(runtimeConfig());
    const auto resumedPolicy = makePolicy(runtimeSpec(), resumed);
    EXPECT_EQ(runCheckpointed(resumed, *resumedPolicy, horizon),
              referenceWakes);
    expectMetricsEqual(reference.metrics(), resumed.metrics());

    std::remove(path.c_str());
}

TEST_F(RuntimeResume, SecondRunOrdinalRestoresIntoTheRightRun)
{
    // A two-run binary checkpointed during its second run: on resume
    // the first run replays from scratch, the second restores.
    const std::string path = tempPath("runtime_ordinal.snap");
    const Tick horizon = 4 * kHour;
    CheckpointRuntime &runtime = CheckpointRuntime::global();

    auto runPair = [&](double everyHours,
                       const std::string &resumeFrom) -> ScrubMetrics {
        runtime.resetForTest();
        CliOptions opts;
        if (everyHours > 0.0) {
            opts.checkpointPath = path;
            opts.checkpointEverySimHours = everyHours;
        }
        opts.resumePath = resumeFrom;
        runtime.configure(opts);
        ScrubMetrics second;
        for (std::uint64_t run = 0; run < 2; ++run) {
            AnalyticConfig config = runtimeConfig();
            config.seed = 99 + run;
            AnalyticBackend device(config);
            const auto policy = makePolicy(runtimeSpec(), device);
            runCheckpointed(device, *policy, horizon);
            second = device.metrics();
        }
        return second;
    };

    const ScrubMetrics straight = runPair(0.0, "");
    // Leaves the last periodic snapshot (taken in run ordinal 1).
    runPair(1.0, "");
    ASSERT_TRUE(fileExists(path));
    const ScrubMetrics resumed = runPair(0.0, path);
    expectMetricsEqual(straight, resumed);
    std::remove(path.c_str());
}

TEST_F(RuntimeResume, SignalFlushesAResumableCheckpointAndExitsZero)
{
    const std::string path = tempPath("runtime_signal.snap");
    std::remove(path.c_str());
    const Tick horizon = 6 * kHour;

    // The child process runs a few wakes, receives SIGINT, and must
    // exit 0 after flushing a final snapshot. poll() only reacts at
    // the next wake boundary, so the flag is raised mid-run.
    EXPECT_EXIT(
        {
            CheckpointRuntime &runtime = CheckpointRuntime::global();
            runtime.resetForTest();
            CliOptions opts;
            opts.checkpointPath = path;
            runtime.configure(opts);
            AnalyticBackend device(runtimeConfig());
            const auto policy = makePolicy(runtimeSpec(), device);
            const std::uint64_t ordinal = runtime.beginRun();
            std::uint64_t wakes = 0;
            while (true) {
                const Tick at = policy->nextWake();
                if (at > horizon)
                    break;
                policy->wake(device, at);
                ++wakes;
                if (wakes == 3)
                    std::raise(SIGINT);
                runtime.poll(device, *policy,
                             CheckpointMeta{ordinal, at, wakes,
                                            policy->name()});
            }
        },
        ::testing::ExitedWithCode(0), "interrupted at sim-time");

    // The snapshot the dying child flushed restores cleanly and at
    // the wake it was interrupted at.
    ASSERT_TRUE(fileExists(path));
    AnalyticBackend device(runtimeConfig());
    const auto policy = makePolicy(runtimeSpec(), device);
    const SnapshotReader reader = SnapshotReader::fromFile(path);
    const CheckpointMeta meta = readCheckpoint(reader, device, *policy);
    EXPECT_EQ(meta.wakes, 3u);

    // ...and the resumed run finishes identical to an uninterrupted
    // one.
    const std::uint64_t wakes =
        [&] {
            std::uint64_t total = meta.wakes;
            while (true) {
                const Tick at = policy->nextWake();
                if (at > horizon)
                    break;
                policy->wake(device, at);
                ++total;
            }
            return total;
        }();
    AnalyticBackend straight(runtimeConfig());
    const auto straightPolicy = makePolicy(runtimeSpec(), straight);
    EXPECT_EQ(runScrub(straight, *straightPolicy, horizon), wakes);
    expectMetricsEqual(straight.metrics(), device.metrics());
    std::remove(path.c_str());
}

TEST_F(RuntimeResume, UnsupportedHarnessRejectsCheckpointFlags)
{
    EXPECT_EXIT(
        {
            CheckpointRuntime &runtime = CheckpointRuntime::global();
            runtime.resetForTest();
            CliOptions opts;
            opts.checkpointPath = "x.snap";
            runtime.configure(opts, /*supported=*/false);
        },
        ::testing::ExitedWithCode(1), "does not support");
}

} // namespace
} // namespace pcmscrub

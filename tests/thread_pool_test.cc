/**
 * @file
 * Tests for the worker-thread pool the sharded engine schedules on:
 * every task runs exactly once, nested runs execute inline instead
 * of deadlocking, and resizing swaps the OS threads underneath.
 */

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"

namespace pcmscrub {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce)
{
    ThreadPool pool(4);
    constexpr std::size_t tasks = 1000;
    std::vector<std::atomic<int>> hits(tasks);
    pool.run(tasks, [&](std::size_t task) { ++hits[task]; });
    for (std::size_t task = 0; task < tasks; ++task)
        EXPECT_EQ(hits[task].load(), 1) << "task " << task;
}

TEST(ThreadPool, SingleWorkerRunsInlineOnCaller)
{
    ThreadPool pool(1);
    const std::thread::id caller = std::this_thread::get_id();
    std::vector<std::thread::id> ran(16);
    std::vector<std::size_t> order;
    pool.run(ran.size(), [&](std::size_t task) {
        ran[task] = std::this_thread::get_id();
        order.push_back(task); // Safe: inline execution is serial.
    });
    for (const auto id : ran)
        EXPECT_EQ(id, caller);
    // Inline execution preserves index order.
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, SingleTaskRunsInline)
{
    ThreadPool pool(4);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran;
    pool.run(1, [&](std::size_t) { ran = std::this_thread::get_id(); });
    EXPECT_EQ(ran, caller);
}

TEST(ThreadPool, ZeroTasksIsANoOp)
{
    ThreadPool pool(4);
    bool ran = false;
    pool.run(0, [&](std::size_t) { ran = true; });
    EXPECT_FALSE(ran);
}

TEST(ThreadPool, NestedRunExecutesInlineWithoutDeadlock)
{
    ThreadPool pool(4);
    std::atomic<int> inner{0};
    pool.run(8, [&](std::size_t) {
        // A worker re-entering run() must not wait on the pool it
        // occupies; nested task sets run inline on that worker.
        pool.run(4, [&](std::size_t) { ++inner; });
    });
    EXPECT_EQ(inner.load(), 8 * 4);
}

TEST(ThreadPool, MoreThreadsThanTasksStillCompletes)
{
    ThreadPool pool(8);
    std::atomic<int> count{0};
    pool.run(3, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, BackToBackJobsReuseWorkers)
{
    ThreadPool pool(4);
    std::atomic<int> total{0};
    for (int round = 0; round < 50; ++round)
        pool.run(16, [&](std::size_t) { ++total; });
    EXPECT_EQ(total.load(), 50 * 16);
}

// Regression: a worker that snapshotted a job but was descheduled
// before claiming a task must not outlive run() — it would invoke the
// previous job's caller-owned (stack-destroyed) function and steal a
// task index from the next job. Tiny back-to-back jobs with distinct
// per-round closures maximise that window; under ASan's
// detect_stack_use_after_return the old bug aborts here.
TEST(ThreadPool, StaleWorkerNeverOutlivesItsJob)
{
    ThreadPool pool(8);
    constexpr int rounds = 2000;
    constexpr std::size_t tasks = 3;
    long long total = 0;
    for (int round = 0; round < rounds; ++round) {
        const int tag = round + 1; // Lives only for this round.
        std::atomic<long long> sum{0};
        pool.run(tasks, [&sum, tag](std::size_t) { sum += tag; });
        ASSERT_EQ(sum.load(), static_cast<long long>(tasks) * tag)
            << "round " << round;
        total += sum.load();
    }
    EXPECT_EQ(total,
              static_cast<long long>(tasks) * rounds * (rounds + 1) / 2);
}

TEST(ThreadPool, ResizeChangesWorkerCount)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    pool.resize(4);
    EXPECT_EQ(pool.threadCount(), 4u);
    std::atomic<int> count{0};
    pool.run(100, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 100);
    pool.resize(0); // 0 means "run inline" -> one worker.
    EXPECT_EQ(pool.threadCount(), 1u);
}

TEST(ThreadPool, ParallelWorkersActuallyRunConcurrently)
{
    // Two tasks that each wait for the other to start can only both
    // finish if at least two workers execute simultaneously. Guarded
    // by a generous timeout turned into a failure, not a hang.
    ThreadPool pool(2);
    std::atomic<int> started{0};
    std::atomic<bool> sawPeer{false};
    pool.run(2, [&](std::size_t) {
        ++started;
        for (int spin = 0; spin < 200000 && started.load() < 2; ++spin)
            std::this_thread::yield();
        if (started.load() == 2)
            sawPeer = true;
    });
    EXPECT_TRUE(sawPeer.load());
}

TEST(ThreadPool, RunCancellableWithoutCancelRunsEverything)
{
    ThreadPool pool(4);
    constexpr std::size_t tasks = 500;
    std::vector<std::atomic<int>> hits(tasks);
    std::atomic<bool> cancel{false};
    const std::size_t skipped = pool.runCancellable(
        tasks, [&](std::size_t task) { ++hits[task]; }, cancel);
    EXPECT_EQ(skipped, 0u);
    for (std::size_t task = 0; task < tasks; ++task)
        EXPECT_EQ(hits[task].load(), 1) << "task " << task;
}

TEST(ThreadPool, RunCancellableSkipsTasksAfterCancel)
{
    // Serial pool for a deterministic cut: task 10 sets the flag, so
    // tasks 11+ must be skipped and counted, never run.
    ThreadPool pool(1);
    constexpr std::size_t tasks = 64;
    std::vector<int> hits(tasks, 0);
    std::atomic<bool> cancel{false};
    const std::size_t skipped = pool.runCancellable(
        tasks,
        [&](std::size_t task) {
            ++hits[task];
            if (task == 10)
                cancel.store(true, std::memory_order_release);
        },
        cancel);
    EXPECT_EQ(skipped, tasks - 11);
    for (std::size_t task = 0; task < tasks; ++task)
        EXPECT_EQ(hits[task], task <= 10 ? 1 : 0) << "task " << task;
}

TEST(ThreadPool, RunCancellablePreCancelledSkipsAll)
{
    ThreadPool pool(4);
    std::atomic<bool> cancel{true};
    std::atomic<int> ran{0};
    const std::size_t skipped = pool.runCancellable(
        100, [&](std::size_t) { ++ran; }, cancel);
    EXPECT_EQ(skipped, 100u);
    EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPool, GlobalPoolDefaultsToSerial)
{
    // The process-wide pool starts at one worker; harnesses opt in
    // to parallelism with --threads. (Other tests may have resized
    // it, so restore rather than assume.)
    ThreadPool::global().resize(1);
    EXPECT_EQ(ThreadPool::global().threadCount(), 1u);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the per-line metadata store.
 */

#include <gtest/gtest.h>

#include "mem/metadata.hh"

namespace pcmscrub {
namespace {

TEST(Metadata, GeometryOfRegions)
{
    const LineMetadataStore store(100, 32);
    EXPECT_EQ(store.lineCount(), 100u);
    EXPECT_EQ(store.regionCount(), 4u);
    EXPECT_EQ(store.regionSize(0), 32u);
    EXPECT_EQ(store.regionSize(3), 4u); // Short tail region.
    EXPECT_EQ(store.regionOf(31), 0u);
    EXPECT_EQ(store.regionOf(32), 1u);
    EXPECT_EQ(store.regionStart(2), 64u);
}

TEST(Metadata, WritesAdvanceLastWrite)
{
    LineMetadataStore store(10, 5);
    EXPECT_EQ(store.lastWrite(3), 0u);
    store.recordWrite(3, 100);
    EXPECT_EQ(store.lastWrite(3), 100u);
    store.recordWrite(3, 50); // Stale writes never move time back.
    EXPECT_EQ(store.lastWrite(3), 100u);
    store.recordWrite(3, 200);
    EXPECT_EQ(store.lastWrite(3), 200u);
}

TEST(Metadata, RegionOldestTracksMinimum)
{
    LineMetadataStore store(8, 4);
    EXPECT_EQ(store.regionOldestWrite(0), 0u);
    // Write three of the four lines in region 0.
    store.recordWrite(0, 100);
    store.recordWrite(1, 200);
    store.recordWrite(2, 300);
    EXPECT_EQ(store.regionOldestWrite(0), 0u); // Line 3 never written.
    store.recordWrite(3, 150);
    EXPECT_EQ(store.regionOldestWrite(0), 100u);
    // Advancing the oldest line moves the minimum to the next one.
    store.recordWrite(0, 400);
    EXPECT_EQ(store.regionOldestWrite(0), 150u);
    // Region 1 is untouched.
    EXPECT_EQ(store.regionOldestWrite(1), 0u);
}

TEST(Metadata, RegionOldestWithInterleavedQueries)
{
    LineMetadataStore store(4, 4);
    store.recordWrite(0, 10);
    store.recordWrite(1, 20);
    store.recordWrite(2, 30);
    store.recordWrite(3, 40);
    EXPECT_EQ(store.regionOldestWrite(0), 10u);
    store.recordWrite(0, 50);
    EXPECT_EQ(store.regionOldestWrite(0), 20u);
    store.recordWrite(1, 60);
    EXPECT_EQ(store.regionOldestWrite(0), 30u);
}

TEST(Metadata, ErrorHistoryAccumulates)
{
    LineMetadataStore store(5, 5);
    EXPECT_EQ(store.errorHistory(2), 0u);
    store.recordErrors(2, 3);
    store.recordErrors(2, 1);
    EXPECT_EQ(store.errorHistory(2), 4u);
    EXPECT_EQ(store.errorHistory(1), 0u);
}

TEST(MetadataDeath, OutOfRangeAccessPanics)
{
    LineMetadataStore store(4, 2);
    EXPECT_DEATH(store.recordWrite(4, 1), "out of range");
    EXPECT_DEATH(store.lastWrite(10), "out of range");
    EXPECT_DEATH(store.regionOldestWrite(2), "out of range");
}

} // namespace
} // namespace pcmscrub

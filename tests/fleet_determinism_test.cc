/**
 * @file
 * Fleet determinism: a supervised campaign is a pure function of its
 * configuration. Device-by-device outcomes and result digests are
 * bit-identical at 1 and 4 worker threads, on both backends, with
 * chaos off and on — and chaos only ever perturbs the devices it
 * names as victims.
 */

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "common/thread_pool.hh"
#include "fleet/fleet_runner.hh"

namespace pcmscrub {
namespace {

std::string
freshSnapshotDir(const std::string &tag)
{
    const std::string dir = ::testing::TempDir() + "pcmscrub_" + tag;
    for (std::uint64_t i = 0; i < 64; ++i) {
        char name[64];
        std::snprintf(name, sizeof(name), "/device_%llu.snap",
                      static_cast<unsigned long long>(i));
        std::remove((dir + name).c_str());
        std::remove((dir + name + ".1").c_str());
    }
    return dir;
}

FleetConfig
campaign(FleetBackendKind backend, bool chaos)
{
    FleetConfig config;
    config.backendKind = backend;
    // The cell backend simulates every cell; keep it small enough
    // that four full campaigns stay fast.
    const bool cell = backend == FleetBackendKind::Cell;
    config.settings.devices = cell ? 6 : 8;
    config.settings.backoffBaseMs = 0.0;
    config.settings.curvePoints = 6;
    config.base.lines = cell ? 64 : 128;
    config.base.scheme = EccScheme::bch(4);
    config.base.demand.writesPerLinePerSecond = 1e-5;
    config.base.demand.readsPerLinePerSecond = 1e-4;
    config.policy.kind = PolicyKind::Basic;
    config.policy.interval = secondsToTicks(1800.0);
    config.faults.stuckPerWrite = 1e-4;
    config.faults.disturbFlipsPerRead = 1e-3;
    config.days = 1.0;
    config.fleetSeed = 1234;
    config.checkpointEveryWakes = 8;
    config.chaos.enabled = chaos;
    config.chaos.victimFraction = 0.6;
    config.chaos.quarantineFraction = 0.3;
    return config;
}

FleetResult
runAt(FleetBackendKind backend, bool chaos, unsigned threads,
      const std::string &tag)
{
    FleetConfig config = campaign(backend, chaos);
    config.snapshotDir = freshSnapshotDir(tag);
    ThreadPool::global().resize(threads);
    const FleetResult result = runFleet(config);
    ThreadPool::global().resize(1);
    return result;
}

void
expectIdenticalCampaigns(const FleetResult &a, const FleetResult &b)
{
    ASSERT_EQ(a.devices.size(), b.devices.size());
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.resumed, b.resumed);
    EXPECT_EQ(a.quarantined, b.quarantined);
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_EQ(a.devices[i].outcome, b.devices[i].outcome)
            << "device " << i;
        EXPECT_EQ(a.devices[i].digest, b.devices[i].digest)
            << "device " << i;
        EXPECT_EQ(a.devices[i].wakes, b.devices[i].wakes)
            << "device " << i;
        EXPECT_EQ(a.devices[i].failures, b.devices[i].failures)
            << "device " << i;
    }
    ASSERT_EQ(a.curve.size(), b.curve.size());
    for (std::size_t k = 0; k < a.curve.size(); ++k) {
        EXPECT_EQ(a.curve[k].survivalFraction,
                  b.curve[k].survivalFraction);
        EXPECT_EQ(a.curve[k].meanUncorrectable,
                  b.curve[k].meanUncorrectable);
        EXPECT_EQ(a.curve[k].meanEnergyPj, b.curve[k].meanEnergyPj);
    }
}

class FleetDeterminismTest
    : public ::testing::TestWithParam<FleetBackendKind>
{
};

TEST_P(FleetDeterminismTest, ThreadCountInvariantWithChaosOff)
{
    const FleetResult serial =
        runAt(GetParam(), false, 1, "det_off_t1");
    const FleetResult parallel =
        runAt(GetParam(), false, 4, "det_off_t4");
    expectIdenticalCampaigns(serial, parallel);
    EXPECT_EQ(serial.completed, serial.devices.size());
}

TEST_P(FleetDeterminismTest, ThreadCountInvariantWithChaosOn)
{
    const FleetResult serial =
        runAt(GetParam(), true, 1, "det_on_t1");
    const FleetResult parallel =
        runAt(GetParam(), true, 4, "det_on_t4");
    expectIdenticalCampaigns(serial, parallel);
    EXPECT_GT(serial.plannedVictims, 0u);
}

TEST_P(FleetDeterminismTest, ChaosOnlyPerturbsItsVictims)
{
    const FleetResult clean =
        runAt(GetParam(), false, 4, "det_clean");
    const FleetResult chaotic =
        runAt(GetParam(), true, 4, "det_chaotic");
    ASSERT_EQ(clean.devices.size(), chaotic.devices.size());
    for (std::size_t i = 0; i < clean.devices.size(); ++i) {
        const SupervisedResult &device = chaotic.devices[i];
        if (!chaotic.plans[i].isVictim())
            EXPECT_EQ(device.outcome, DeviceOutcome::Completed)
                << "device " << i;
        if (device.succeeded()) {
            EXPECT_EQ(device.digest, clean.devices[i].digest)
                << "device " << i;
        } else {
            EXPECT_TRUE(chaotic.plans[i].isVictim())
                << "device " << i
                << " failed without an injected fault";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Backends, FleetDeterminismTest,
                         ::testing::Values(FleetBackendKind::Analytic,
                                           FleetBackendKind::Cell),
                         [](const auto &info) {
                             return std::string(fleetBackendKindName(
                                 info.param));
                         });

} // namespace
} // namespace pcmscrub

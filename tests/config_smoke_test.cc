/**
 * @file
 * Every checked-in example config must parse cleanly through the
 * shared run-config loader: no unknown keys (typos fail the build,
 * not the experiment), and every value within its validated range.
 * Out-of-range and misspelled values must die with a diagnostic.
 *
 * PCMSCRUB_CONFIG_DIR points at examples/configs in the source tree.
 */

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/config.hh"
#include "scrub/run_config.hh"

namespace pcmscrub {
namespace {

std::vector<std::string>
checkedInConfigs()
{
    std::vector<std::string> paths;
    for (const auto &entry :
         std::filesystem::directory_iterator(PCMSCRUB_CONFIG_DIR)) {
        if (entry.path().extension() == ".ini")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

TEST(ConfigSmokeTest, ShippedConfigsExist)
{
    // The directory moving or emptying out would silently turn the
    // smoke test into a no-op; pin the inventory floor instead.
    EXPECT_GE(checkedInConfigs().size(), 2u);
}

TEST(ConfigSmokeTest, EveryShippedConfigParsesWithNoUnknownKeys)
{
    for (const std::string &path : checkedInConfigs()) {
        SCOPED_TRACE(path);
        const ConfigFile file = ConfigFile::load(path);
        const AnalyticRunConfig run =
            applyRunConfig(file, AnalyticRunConfig{});
        EXPECT_GT(run.backend.lines, 0u);
        EXPECT_GT(run.days, 0.0);
        const std::vector<std::string> unused = file.unusedKeys();
        EXPECT_TRUE(unused.empty())
            << "unrecognised key '" << (unused.empty() ? "" : unused[0])
            << "' — a typo, or a key the loader must learn";
    }
}

TEST(ConfigSmokeTest, ShippedConfigsBuildWorkingBackends)
{
    // The parsed values must actually construct: a config that parses
    // but cannot build a backend is still broken.
    for (const std::string &path : checkedInConfigs()) {
        SCOPED_TRACE(path);
        AnalyticRunConfig run =
            applyRunConfig(ConfigFile::load(path), AnalyticRunConfig{});
        run.backend.lines = std::min<std::uint64_t>(run.backend.lines, 64);
        AnalyticBackend device(run.backend);
        EXPECT_EQ(device.lineCount(), run.backend.lines);
        const auto policy = makePolicy(run.policy, device);
        EXPECT_FALSE(policy->name().empty());
    }
}

// Hostile values -------------------------------------------------

AnalyticRunConfig
applyText(const std::string &text)
{
    return applyRunConfig(ConfigFile::parse(text, "test.ini"),
                          AnalyticRunConfig{});
}

TEST(ConfigSmokeDeathTest, OutOfRangeValuesAreFatal)
{
    EXPECT_EXIT((void)applyText("[run]\nlines = 0\n"),
                ::testing::ExitedWithCode(1), "lines");
    EXPECT_EXIT((void)applyText("[run]\ndays = -2\n"),
                ::testing::ExitedWithCode(1), "days");
    EXPECT_EXIT((void)applyText("[policy]\ninterval_s = 0\n"),
                ::testing::ExitedWithCode(1), "interval");
    EXPECT_EXIT((void)applyText("[policy]\ntarget_ue_prob = 1.5\n"),
                ::testing::ExitedWithCode(1), "target_ue_prob");
    EXPECT_EXIT((void)applyText("[policy]\nlines_per_region = 0\n"),
                ::testing::ExitedWithCode(1), "lines_per_region");
    EXPECT_EXIT((void)applyText("[device]\nsigma_log_r = 0\n"),
                ::testing::ExitedWithCode(1), "sigma_log_r");
}

TEST(ConfigSmokeDeathTest, UnknownEnumNamesAreFatal)
{
    EXPECT_EXIT((void)applyText("[device]\necc = hamming\n"),
                ::testing::ExitedWithCode(1), "ECC scheme");
    EXPECT_EXIT((void)applyText("[policy]\nkind = psychic\n"),
                ::testing::ExitedWithCode(1), "unknown scrub policy");
    EXPECT_EXIT((void)applyText("[demand]\nworkload = bursty\n"),
                ::testing::ExitedWithCode(1), "workload");
}

TEST(ConfigSmokeDeathTest, RasValuesAreValidated)
{
    EXPECT_EXIT((void)applyText("[ras]\nmin_interval_s = 0\n"),
                ::testing::ExitedWithCode(1), "min_interval_s");
    EXPECT_EXIT((void)applyText("[ras]\nmin_interval_s = 3600\n"
                                "max_interval_s = 60\n"),
                ::testing::ExitedWithCode(1),
                "max_interval_s must be >= ras.min_interval_s");
    EXPECT_EXIT((void)applyText("[ras]\nslo_ue_per_line_day = 0\n"),
                ::testing::ExitedWithCode(1), "slo_ue_per_line_day");
    EXPECT_EXIT(
        (void)applyText("[ras]\nwrite_budget_per_line_day = -1\n"),
        ::testing::ExitedWithCode(1), "write_budget_per_line_day");
    EXPECT_EXIT((void)applyText("[ras]\nsample_every_s = 0\n"),
                ::testing::ExitedWithCode(1), "sample_every_s");
    EXPECT_EXIT((void)applyText("[ras]\nstep_factor = 1\n"),
                ::testing::ExitedWithCode(1), "step_factor");
    EXPECT_EXIT((void)applyText("[ras]\nhysteresis = 1\n"),
                ::testing::ExitedWithCode(1), "hysteresis");
    EXPECT_EXIT((void)applyText("[ras]\nlines_per_region = 0\n"),
                ::testing::ExitedWithCode(1), "lines_per_region");
    EXPECT_EXIT((void)applyText("[ras]\nppr_ue_threshold = 0\n"),
                ::testing::ExitedWithCode(1), "ppr_ue_threshold");
}

TEST(ConfigSmokeTest, PprSpareRowsEnableTheLadder)
{
    // Provisioning spare rows is the opt-in for the whole
    // degradation ladder — a config asking for PPR must not
    // silently no-op because degradation was left at its default.
    const AnalyticRunConfig run =
        applyText("[ras]\nppr_spare_rows = 8\n");
    EXPECT_TRUE(run.backend.degradation.enabled);
    EXPECT_EQ(run.backend.degradation.pprSpareRows, 8u);

    const AnalyticRunConfig plain = applyText("[run]\nlines = 64\n");
    EXPECT_FALSE(plain.backend.degradation.enabled);
}

TEST(ConfigSmokeDeathTest, NonNumericValuesAreFatal)
{
    EXPECT_EXIT((void)applyText("[run]\nlines = many\n"),
                ::testing::ExitedWithCode(1), "lines");
    EXPECT_EXIT((void)applyText("[run]\ndays = fortnight\n"),
                ::testing::ExitedWithCode(1), "days");
}

TEST(ConfigSmokeTest, UnknownKeysAreReportedAsUnused)
{
    const ConfigFile file = ConfigFile::parse(
        "[run]\nlines = 64\n[policy]\nkinds = combined\n", "test.ini");
    (void)applyRunConfig(file, AnalyticRunConfig{});
    const std::vector<std::string> unused = file.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "policy.kinds");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for memory geometry and address mapping.
 */

#include <set>

#include <gtest/gtest.h>

#include "mem/geometry.hh"

namespace pcmscrub {
namespace {

TEST(MemGeometry, TotalsMultiplyOut)
{
    const MemGeometry geo(2, 4, 1024, 8);
    EXPECT_EQ(geo.totalBanks(), 8u);
    EXPECT_EQ(geo.totalLines(), 2ull * 4 * 1024 * 8);
}

TEST(MemGeometry, LocateIndexRoundTrip)
{
    const MemGeometry geo(2, 4, 64, 8);
    for (LineIndex line = 0; line < geo.totalLines(); ++line) {
        const LineLocation loc = geo.locate(line);
        EXPECT_EQ(geo.index(loc), line) << "line " << line;
    }
}

TEST(MemGeometry, SequentialLinesInterleaveAcrossChannels)
{
    const MemGeometry geo(4, 2, 16, 4);
    for (LineIndex line = 0; line + 1 < 32; ++line) {
        const auto a = geo.locate(line);
        const auto b = geo.locate(line + 1);
        EXPECT_EQ(b.channel, (a.channel + 1) % 4) << "line " << line;
    }
}

TEST(MemGeometry, SequentialLinesSpreadOverAllBanks)
{
    const MemGeometry geo(2, 4, 16, 4);
    std::set<unsigned> banks;
    for (LineIndex line = 0; line < geo.totalBanks(); ++line)
        banks.insert(geo.bankOf(line));
    EXPECT_EQ(banks.size(), geo.totalBanks());
}

TEST(MemGeometry, BankOfConsistentWithLocate)
{
    const MemGeometry geo(3, 5, 7, 2);
    for (LineIndex line = 0; line < geo.totalLines(); ++line) {
        const auto loc = geo.locate(line);
        EXPECT_EQ(geo.bankOf(line),
                  loc.channel * geo.banksPerChannel() + loc.bank);
    }
}

TEST(MemGeometry, FieldsStayInRange)
{
    const MemGeometry geo(2, 3, 10, 4);
    for (LineIndex line = 0; line < geo.totalLines(); ++line) {
        const auto loc = geo.locate(line);
        EXPECT_LT(loc.channel, 2u);
        EXPECT_LT(loc.bank, 3u);
        EXPECT_LT(loc.row, 10u);
        EXPECT_LT(loc.offset, 4u);
    }
}

TEST(MemGeometryDeath, ZeroDimensionIsFatal)
{
    EXPECT_EXIT(MemGeometry(0, 1, 1, 1), ::testing::ExitedWithCode(1),
                "positive");
    EXPECT_EXIT(MemGeometry(1, 1, 0, 1), ::testing::ExitedWithCode(1),
                "positive");
}

TEST(MemGeometryDeath, OutOfRangeLinePanics)
{
    const MemGeometry geo(1, 1, 2, 2);
    EXPECT_DEATH(geo.locate(4), "out of range");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for Error-Correcting Pointers: the store itself, and its
 * integration with the cell-accurate and analytic backends.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/ecp.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"

namespace pcmscrub {
namespace {

TEST(EcpStore, AssignAndApply)
{
    EcpStore store(64, 4);
    EXPECT_EQ(store.capacity(), 4u);
    EXPECT_EQ(store.used(), 0u);
    EXPECT_TRUE(store.assign(3, true));
    EXPECT_TRUE(store.assign(60, false));
    EXPECT_EQ(store.used(), 2u);

    BitVector word(64);
    word.set(60, true); // Stuck-at-1 bit the ECP must force to 0.
    store.apply(word);
    EXPECT_TRUE(word.get(3));
    EXPECT_FALSE(word.get(60));
}

TEST(EcpStore, ReassignUpdatesWithoutConsuming)
{
    EcpStore store(32, 2);
    EXPECT_TRUE(store.assign(5, true));
    EXPECT_TRUE(store.assign(5, false)); // New data, same position.
    EXPECT_EQ(store.used(), 1u);
    BitVector word(32);
    word.set(5, true);
    store.apply(word);
    EXPECT_FALSE(word.get(5));
}

TEST(EcpStore, CapacityExhaustion)
{
    EcpStore store(32, 2);
    EXPECT_TRUE(store.assign(1, true));
    EXPECT_TRUE(store.assign(2, true));
    EXPECT_TRUE(store.full());
    EXPECT_FALSE(store.assign(3, true));
    // The known positions keep working.
    EXPECT_TRUE(store.assign(1, false));
}

TEST(EcpStore, ClearForgetsEverything)
{
    EcpStore store(32, 2);
    store.assign(1, true);
    store.clear();
    EXPECT_EQ(store.used(), 0u);
    BitVector word(32);
    store.apply(word);
    EXPECT_EQ(word.popcount(), 0u);
}

TEST(EcpStore, OverheadMatchesDesign)
{
    // 512-bit space: 9-bit pointers + 1 replacement bit per entry
    // plus a full flag. ECP-6 = 61 bits, as in the ISCA'10 paper.
    EXPECT_EQ(EcpStore(512, 6).overheadBits(), 61u);
    EXPECT_EQ(EcpStore(512, 0).overheadBits(), 1u);
}

TEST(EcpStoreDeath, OutOfRangePositionPanics)
{
    EcpStore store(16, 2);
    EXPECT_DEATH(store.assign(16, true), "out of range");
}

TEST(EcpCellBackend, StuckCellsPatchedOnRead)
{
    CellBackendConfig config;
    config.lines = 8;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 8;
    config.seed = 5;
    CellBackend backend(config);

    // Freeze three cells of line 0 at hostile levels.
    Line &line = backend.array().line(0);
    for (unsigned i = 0; i < 3; ++i) {
        const auto cell = line.cell(10 + i);
        cell.stuck = true;
        cell.stuckLevel = (cell.storedLevel + 2) % mlcLevels;
    }
    // Re-program so write-verify discovers the stuck cells.
    backend.demandWrite(0, secondsToTicks(1.0));
    EXPECT_GT(backend.ecpUsed(0), 0u);
    EXPECT_EQ(backend.trueErrors(0, secondsToTicks(1.0)), 0u);
    EXPECT_TRUE(backend.eccCheckClean(0, secondsToTicks(1.0)));
}

TEST(EcpCellBackend, ExhaustedStoreLeavesResidualErrors)
{
    CellBackendConfig config;
    config.lines = 4;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 2; // Room for at most one bad cell's bits.
    config.seed = 6;
    CellBackend backend(config);

    Line &line = backend.array().line(0);
    unsigned frozen = 0;
    for (unsigned i = 0; i < line.cellCount() && frozen < 6; ++i) {
        const auto cell = line.cell(i);
        cell.stuck = true;
        cell.stuckLevel = (cell.storedLevel + 2) % mlcLevels;
        ++frozen;
    }
    backend.demandWrite(0, secondsToTicks(1.0));
    EXPECT_EQ(backend.ecpUsed(0), 2u);
    EXPECT_GT(backend.trueErrors(0, secondsToTicks(1.0)), 0u);
}

TEST(EcpCellBackend, WithoutEcpSameFaultsStayVisible)
{
    for (const unsigned entries : {0u, 16u}) {
        CellBackendConfig config;
        config.lines = 4;
        config.scheme = EccScheme::bch(4);
        config.ecpEntries = entries;
        config.seed = 7;
        CellBackend backend(config);
        Line &line = backend.array().line(0);
        for (unsigned i = 0; i < 4; ++i) {
            const auto cell = line.cell(20 + i);
            cell.stuck = true;
            cell.stuckLevel = (cell.storedLevel + 2) % mlcLevels;
        }
        backend.demandWrite(0, secondsToTicks(1.0));
        const unsigned errors =
            backend.trueErrors(0, secondsToTicks(1.0));
        if (entries == 0) {
            EXPECT_GT(errors, 0u);
        } else {
            EXPECT_EQ(errors, 0u);
        }
    }
}

TEST(EcpAnalytic, EcpAbsorbsStuckErrors)
{
    // Heavily worn device with demand traffic: with ECP the stuck
    // population stops producing errors until the per-line budget
    // is exceeded.
    AnalyticConfig config;
    config.lines = 256;
    config.scheme = EccScheme::bch(8);
    // A broad endurance distribution keeps the typical line's stuck
    // population inside ECP's budget while a Poisson write spread
    // across lines cannot blow past it.
    config.device.enduranceMedian = 300.0;
    config.device.enduranceSigmaLn = 0.5;
    // Disable drift so the comparison isolates the stuck-cell path.
    config.device.driftMu = {0.0, 0.0, 0.0, 0.0};
    config.device.driftSpeedSigmaLn = 0.0;
    config.demand.writesPerLinePerSecond = 1e-3;
    config.seed = 13;

    config.ecpEntries = 0;
    AnalyticBackend bare(config);
    config.ecpEntries = 16;
    AnalyticBackend patched(config);

    // ~100 writes/line: a few percent of cells are worn out, so the
    // typical line's stuck population fits inside ECP-16's budget
    // of eight cells.
    const Tick at = secondsToTicks(1e5);
    std::uint64_t bareErrors = 0;
    std::uint64_t patchedErrors = 0;
    for (LineIndex line = 0; line < 256; ++line) {
        bareErrors += bare.trueErrors(line, at);
        patchedErrors += patched.trueErrors(line, at);
    }
    ASSERT_GT(bareErrors, 300u);
    EXPECT_LT(patchedErrors, bareErrors / 3);
}

} // namespace
} // namespace pcmscrub

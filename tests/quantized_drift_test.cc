/**
 * @file
 * Precision contract of the quantized physics planes (quant.hh).
 *
 * The storage diet is only admissible because its error is *bounded
 * and documented*: logR0 round-trips within half a quantization step
 * (±7σ window at ~0.055σ resolution), nu round-trips within
 * exp(logStep/2) − 1 relative error on its geometric code, decode is
 * monotone (so drift ordering survives quantization), the derived
 * manufacturing stream reproduces CellModel::initialize draw for
 * draw, and an E10-style drift-crossing headline computed on the
 * quantized planes lands within a pinned tolerance of the same
 * experiment on double-precision cells.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "common/random.hh"
#include "pcm/cell.hh"
#include "pcm/cell_storage.hh"
#include "pcm/device_config.hh"
#include "pcm/quant.hh"

namespace pcmscrub {
namespace {

QuantSpec
makeSpec(const DeviceConfig &config = DeviceConfig())
{
    QuantSpec spec;
    spec.init(config);
    return spec;
}

// Round-trip bounds ------------------------------------------------

TEST(QuantizedDrift, LogR0RoundTripWithinHalfStep)
{
    const DeviceConfig config;
    const QuantSpec spec = makeSpec(config);
    // Documented ULP contract: |decode(encode(x)) - x| <= step/2
    // plus one f32 rounding of a value of magnitude < 8.
    const double bound = spec.logR0Step() / 2.0 + 8.0 * 0x1p-24;
    Random rng(11);
    for (unsigned gray = 0; gray < 4; ++gray) {
        const double mean =
            config.levelMeanLogR[grayToLevel(
                static_cast<std::uint8_t>(gray))];
        for (int trial = 0; trial < 4000; ++trial) {
            // Stay strictly inside the ±7σ window; the edges clamp.
            const double value =
                mean + (rng.uniform() * 13.9 - 6.95) * config.sigmaLogR;
            const float back = spec.decodeLogR0(
                gray, spec.encodeLogR0(gray,
                                       static_cast<float>(value)));
            EXPECT_NEAR(static_cast<double>(back), value, bound)
                << "gray " << gray << " trial " << trial;
        }
        // The programmed mean itself is exact: code 128 decodes to
        // float(mean).
        EXPECT_EQ(spec.decodeLogR0(gray, QuantSpec::kLogR0Bias),
                  static_cast<float>(mean));
    }
}

TEST(QuantizedDrift, LogR0ClampsOutsideSevenSigmaWindow)
{
    const DeviceConfig config;
    const QuantSpec spec = makeSpec(config);
    for (unsigned gray = 0; gray < 4; ++gray) {
        const double mean =
            config.levelMeanLogR[grayToLevel(
                static_cast<std::uint8_t>(gray))];
        const float high =
            static_cast<float>(mean + 20.0 * config.sigmaLogR);
        const float low =
            static_cast<float>(mean - 20.0 * config.sigmaLogR);
        EXPECT_EQ(spec.encodeLogR0(gray, high), 255);
        EXPECT_EQ(spec.encodeLogR0(gray, low), 0);
        // Clamped codes decode to the window edge, not beyond it.
        EXPECT_LT(spec.decodeLogR0(gray, 255), high);
        EXPECT_GT(spec.decodeLogR0(gray, 0), low);
    }
}

TEST(QuantizedDrift, NuRoundTripRelativeErrorBounded)
{
    const QuantSpec spec = makeSpec();
    // Geometric code: relative round-trip error is bounded by
    // exp(logStep/2) - 1 (~1.5% at the default 254-point range),
    // plus f32 rounding slack.
    const double relBound =
        std::exp(spec.nuLogStep() / 2.0) - 1.0 + 1e-6;
    Random rng(13);
    for (int trial = 0; trial < 4000; ++trial) {
        // Log-uniform across the representable range.
        const double value = spec.nuMin() *
            std::exp(rng.uniform() *
                     std::log(spec.nuMax() / spec.nuMin()));
        const float back =
            spec.decodeNu(spec.encodeNu(static_cast<float>(value)));
        EXPECT_NEAR(static_cast<double>(back) / value, 1.0, relBound)
            << "trial " << trial << " value " << value;
    }
}

TEST(QuantizedDrift, NuEdgeCodesAreExact)
{
    const QuantSpec spec = makeSpec();
    // Zero (and any clamped non-positive draw) is exactly zero.
    EXPECT_EQ(spec.encodeNu(0.0f), 0);
    EXPECT_EQ(spec.encodeNu(-1.0f), 0);
    EXPECT_EQ(spec.decodeNu(0), 0.0f);
    // Sub-range values collapse to the smallest nonzero code; the
    // absolute error is at most nuMin.
    const float tiny = static_cast<float>(spec.nuMin() / 10.0);
    EXPECT_EQ(spec.encodeNu(tiny), 1);
    EXPECT_NEAR(static_cast<double>(spec.decodeNu(1)), spec.nuMin(),
                spec.nuMin() * 1e-6);
    // Beyond-range values clamp to the top code.
    EXPECT_EQ(spec.encodeNu(static_cast<float>(spec.nuMax() * 4.0)),
              254);
    // The stuck sentinel decodes as zero drift so an unmasked SIMD
    // lane gather stays harmless.
    EXPECT_EQ(spec.decodeNu(QuantSpec::kStuckNuIdx), 0.0f);
}

// Monotonicity ------------------------------------------------------

TEST(QuantizedDrift, DecodeIsMonotoneSoDriftOrderingSurvives)
{
    const QuantSpec spec = makeSpec();
    for (unsigned gray = 0; gray < 4; ++gray) {
        for (unsigned q = 1; q < 256; ++q) {
            EXPECT_LT(spec.decodeLogR0(
                          gray, static_cast<std::uint8_t>(q - 1)),
                      spec.decodeLogR0(
                          gray, static_cast<std::uint8_t>(q)))
                << "gray " << gray << " q " << q;
        }
    }
    // nu codes 0..254 ascend (0 < nuMin, then geometric); every code
    // decodes non-negative, so quantized drift never runs backwards
    // and the sensed level stays monotone non-decreasing in time.
    for (unsigned idx = 1; idx <= 254; ++idx) {
        EXPECT_LT(spec.decodeNu(static_cast<std::uint8_t>(idx - 1)),
                  spec.decodeNu(static_cast<std::uint8_t>(idx)));
    }
    for (unsigned idx = 0; idx < 256; ++idx)
        EXPECT_GE(spec.decodeNu(static_cast<std::uint8_t>(idx)), 0.0f);
}

TEST(QuantizedDrift, EncodeIsMonotone)
{
    const QuantSpec spec = makeSpec();
    Random rng(17);
    for (int trial = 0; trial < 2000; ++trial) {
        const float a = static_cast<float>(rng.uniform() * 8.0);
        const float b = static_cast<float>(rng.uniform() * 8.0);
        const float lo = std::min(a, b);
        const float hi = std::max(a, b);
        EXPECT_LE(spec.encodeLogR0(1, lo), spec.encodeLogR0(1, hi));
        EXPECT_LE(spec.encodeNu(lo * 0.05f), spec.encodeNu(hi * 0.05f));
    }
}

// Manufacturing stream ---------------------------------------------

TEST(QuantizedDrift, ManufacturingDrawMatchesCellModelInitialize)
{
    const DeviceConfig config;
    const QuantSpec spec = makeSpec(config);
    const CellModel model(config);
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        Random specRng(seed);
        Random modelRng(seed);
        float endurance = 0.0f;
        float nuSpeed = 0.0f;
        spec.sampleManufacturing(specRng, endurance, nuSpeed);
        Cell cell;
        model.initialize(cell, modelRng);
        // Draw-for-draw lockstep: the compact store's derived values
        // are the exact floats initialize() would have stored.
        EXPECT_EQ(endurance, cell.enduranceWrites) << "seed " << seed;
        EXPECT_EQ(nuSpeed, cell.nuSpeed) << "seed " << seed;
    }
}

// E10-style headline ------------------------------------------------

/**
 * Drift-crossing headline: program a population at one level, let it
 * drift, count threshold crossings. Computed twice — once on exact
 * double-precision cell state, once through the quantized planes —
 * the two rates must agree within a pinned tolerance. This is the
 * experiment family the paper's E10 figure reports; the tolerance
 * pins how much headline drift the storage diet is allowed to cause.
 */
TEST(QuantizedDrift, HeadlineCrossingRateMatchesDoubleOracle)
{
    const DeviceConfig config;
    const QuantSpec spec = makeSpec(config);
    constexpr unsigned level = 2;
    const unsigned gray = levelToGray(level);
    const double threshold = config.readThresholdLogR[level];
    constexpr int population = 20000;
    // Ten simulated days: deep enough into the drift regime that a
    // visible fraction of the level-2 band has crossed.
    const double u = std::log10(864000.0 / config.driftT0Seconds);

    Random rng(2024);
    int exactCrossed = 0;
    int quantCrossed = 0;
    for (int i = 0; i < population; ++i) {
        // The same draw order CellModel::program uses.
        const float logR0 = static_cast<float>(rng.normal(
            config.levelMeanLogR[level], config.sigmaLogR));
        const float nuSpeed = static_cast<float>(
            rng.logNormal(0.0, config.driftSpeedSigmaLn));
        const float nu = static_cast<float>(
            static_cast<double>(nuSpeed) *
            std::max(0.0, rng.normal(config.driftMu[level],
                                     config.driftSigma(level))));

        const double exact = static_cast<double>(logR0) +
            static_cast<double>(nu) * u;
        exactCrossed += exact > threshold;

        const float qLogR0 =
            spec.decodeLogR0(gray, spec.encodeLogR0(gray, logR0));
        const float qNu = spec.decodeNu(spec.encodeNu(nu));
        const double quant = static_cast<double>(qLogR0) +
            static_cast<double>(qNu) * u;
        quantCrossed += quant > threshold;
    }

    const double exactRate =
        static_cast<double>(exactCrossed) / population;
    const double quantRate =
        static_cast<double>(quantCrossed) / population;
    // The experiment must be in a meaningful regime, not 0% or 100%.
    EXPECT_GT(exactRate, 0.01);
    EXPECT_LT(exactRate, 0.99);
    // Pinned headline tolerance: quantization may move borderline
    // cells across the threshold, but the flips are symmetric, so
    // the rates agree to well under one percentage point.
    EXPECT_NEAR(quantRate, exactRate, 0.005)
        << "exact " << exactCrossed << " quantized " << quantCrossed;
}

/**
 * The same contract through the storage stack: cells encoded into
 * the compact planes re-read (decode) within the documented bounds
 * of what was stored.
 */
TEST(QuantizedDrift, StorageRoundTripHonoursBounds)
{
    const DeviceConfig config;
    constexpr std::size_t cells = 64;
    CellStorage store;
    CellStorage::Geometry g;
    g.lines = 1;
    g.cellsPerLine = cells;
    g.intendedWordsPerLine = (2 * cells + 63) / 64;
    g.auxPlanes = false;
    g.manufSeed = 3;
    store.configure(g);
    store.ensureSpec(config);
    store.setLineMeta(0, secondsToTicks(1.0), 1);

    const CellConstSpan span = store.constSpan(0, cells);
    const QuantSpec &spec = *span.spec;
    const double logR0Bound = spec.logR0Step() / 2.0 + 8.0 * 0x1p-24;
    const double nuRelBound =
        std::exp(spec.nuLogStep() / 2.0) - 1.0 + 1e-6;

    Random rng(5);
    for (std::size_t i = 0; i < cells; ++i) {
        const unsigned level =
            static_cast<unsigned>(rng.uniformInt(mlcLevels));
        const float logR0 = static_cast<float>(rng.normal(
            config.levelMeanLogR[level], config.sigmaLogR));
        const float nu = static_cast<float>(std::max(
            0.0, rng.normal(config.driftMu[level],
                            config.driftSigma(level))));
        const unsigned gray = levelToGray(level);
        store.setGray(i, gray);
        store.setRawLogRq(i, spec.encodeLogR0(gray, logR0));
        store.setRawNuIdx(i, spec.encodeNu(nu));

        EXPECT_NEAR(static_cast<double>(span.logR0(i)),
                    static_cast<double>(logR0), logR0Bound);
        if (nu >= spec.nuMin()) {
            EXPECT_NEAR(static_cast<double>(span.nu(i)) /
                            static_cast<double>(nu),
                        1.0, nuRelBound);
        } else {
            EXPECT_LE(static_cast<double>(span.nu(i)),
                      spec.nuMin() * (1.0 + 1e-6));
        }
    }
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for log-level gating and the assertion macro.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"

namespace pcmscrub {
namespace {

TEST(Logging, LevelRoundTrips)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Debug);
    EXPECT_EQ(logLevel(), LogLevel::Debug);
    setLogLevel(LogLevel::Silent);
    EXPECT_EQ(logLevel(), LogLevel::Silent);
    setLogLevel(before);
}

TEST(Logging, InformAndWarnDoNotCrashWhenSuppressed)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Silent);
    inform("should not appear %d", 1);
    warn("should not appear %d", 2);
    debug("should not appear %d", 3);
    setLogLevel(before);
}

TEST(Logging, WarnOnceFiresExactlyOnce)
{
    const LogLevel before = logLevel();
    setLogLevel(LogLevel::Warn);
    ::testing::internal::CaptureStderr();
    for (int i = 0; i < 3; ++i)
        warn_once("deduplicated warning %d", i);
    const std::string output =
        ::testing::internal::GetCapturedStderr();
    setLogLevel(before);

    std::size_t count = 0;
    for (std::size_t pos = output.find("deduplicated warning");
         pos != std::string::npos;
         pos = output.find("deduplicated warning", pos + 1)) {
        ++count;
    }
    EXPECT_EQ(count, 1u);
    // The first call is the one that prints.
    EXPECT_NE(output.find("deduplicated warning 0"),
              std::string::npos);
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 42), "panic: boom 42");
}

TEST(LoggingDeath, FatalExitsWithOne)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeath, AssertMacroFiresOnFalse)
{
    EXPECT_DEATH(PCMSCRUB_ASSERT(1 == 2, "math broke %d", 7),
                 "assertion '1 == 2' failed: math broke 7");
}

TEST(Logging, AssertMacroPassesOnTrue)
{
    PCMSCRUB_ASSERT(2 + 2 == 4, "never printed");
    SUCCEED();
}

} // namespace
} // namespace pcmscrub

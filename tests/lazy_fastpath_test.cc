/**
 * @file
 * Property tests for the lazy-drift fast path: a run with the fast
 * path enabled must be indistinguishable — metrics, RNG streams,
 * energy, and full serialized cell state — from a run forced onto
 * the exact per-cell path, across seeds, policies, degradation
 * ladders, and fault campaigns. The comparison is the backend's own
 * checkpoint byte stream, which covers every piece of state a later
 * computation could observe.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "common/serialize.hh"
#include "common/simd.hh"
#include "faults/fault_injector.hh"
#include "scrub/cell_backend.hh"
#include "scrub/policy.hh"
#include "scrub/sweep_scrub.hh"

namespace pcmscrub {
namespace {

enum class PolicyKind { Light, Basic, StrongEcc, Threshold };

std::unique_ptr<ScrubPolicy>
makeTestPolicy(PolicyKind kind, Tick interval)
{
    switch (kind) {
      case PolicyKind::Light:
        return std::make_unique<LightDetectScrub>(interval);
      case PolicyKind::Basic:
        return std::make_unique<BasicScrub>(interval);
      case PolicyKind::StrongEcc:
        return std::make_unique<StrongEccScrub>(interval);
      case PolicyKind::Threshold:
      default:
        return std::make_unique<ThresholdScrub>(interval, 1);
    }
}

struct CampaignCase
{
    const char *name;
    bool faults;
    FaultCampaignConfig campaign{};
    bool ladder = false;
};

std::vector<CampaignCase>
campaignCases()
{
    std::vector<CampaignCase> cases;
    cases.push_back({"clean", false, {}, false});

    // Stuck-at injection dirties eligibility without touching the
    // read path, so the fast path stays armed and must notice the
    // frozen cells line by line.
    CampaignCase stuck{"stuck", true, {}, true};
    stuck.campaign.stuckPerWrite = 0.4;
    stuck.campaign.wearCorrelation = 1.0;
    stuck.campaign.seed = 99;
    cases.push_back(stuck);

    // Read-path campaigns must disarm the fast path entirely.
    CampaignCase disturb{"disturb", true, {}, false};
    disturb.campaign.disturbFlipsPerRead = 0.05;
    disturb.campaign.burstProbPerRead = 0.01;
    disturb.campaign.seed = 99;
    cases.push_back(disturb);

    CampaignCase miscorrect{"miscorrect", true, {}, true};
    miscorrect.campaign.miscorrectionProb = 0.02;
    miscorrect.campaign.metadataCorruptionProb = 0.01;
    miscorrect.campaign.seed = 99;
    cases.push_back(miscorrect);
    return cases;
}

/** Run one campaign and serialize the full end state. */
std::vector<std::uint8_t>
runCase(bool lazy, std::uint64_t seed, PolicyKind kind,
        const CampaignCase &campaign)
{
    CellBackendConfig config;
    config.lines = 96;
    config.scheme = EccScheme::bch(4);
    config.seed = seed;
    config.lazyDrift = lazy;
    if (campaign.ladder) {
        config.ecpEntries = 2;
        config.degradation.enabled = true;
        config.degradation.maxRetries = 2;
        config.degradation.spareLines = 2;
        config.degradation.slcFallback = true;
    }
    CellBackend backend(config);

    std::unique_ptr<FaultInjector> injector;
    if (campaign.faults) {
        injector = std::make_unique<FaultInjector>(campaign.campaign);
        backend.setFaultInjector(injector.get());
    }

    // Long enough past the drift knee that real errors, rewrites,
    // and (under the ladder) escalations all occur.
    const auto policy =
        makeTestPolicy(kind, secondsToTicks(600.0));
    runScrub(backend, *policy, secondsToTicks(4.0 * 3600.0));

    SnapshotSink sink;
    backend.checkpointSave(sink);
    return sink.takeBytes();
}

TEST(LazyFastPath, BitIdenticalToExactPathAcrossCampaigns)
{
    const PolicyKind policies[] = {
        PolicyKind::Light, PolicyKind::Basic, PolicyKind::StrongEcc,
        PolicyKind::Threshold};
    for (const CampaignCase &campaign : campaignCases()) {
        for (const PolicyKind kind : policies) {
            for (const std::uint64_t seed : {3ull, 17ull}) {
                const auto fast = runCase(true, seed, kind, campaign);
                const auto slow = runCase(false, seed, kind, campaign);
                EXPECT_EQ(fast, slow)
                    << "campaign " << campaign.name << " policy "
                    << static_cast<int>(kind) << " seed " << seed;
            }
        }
    }
}

TEST(LazyFastPath, CheckpointRestoreInvalidatesCachedCrossings)
{
    // Save an aged backend, age it further, then restore: the
    // restored state's subsequent scrub must match a straight-through
    // run, which only holds if restore drops every cached crossing.
    CellBackendConfig config;
    config.lines = 64;
    config.scheme = EccScheme::bch(4);
    config.seed = 5;
    const Tick interval = secondsToTicks(600.0);
    const Tick half = secondsToTicks(2.0 * 3600.0);
    const Tick full = secondsToTicks(4.0 * 3600.0);

    CellBackend straight(config);
    LightDetectScrub straightPolicy(interval);
    runScrub(straight, straightPolicy, full);
    SnapshotSink straightSink;
    straight.checkpointSave(straightSink);

    CellBackend first(config);
    LightDetectScrub firstPolicy(interval);
    runScrub(first, firstPolicy, half);
    SnapshotSink mid;
    first.checkpointSave(mid);

    CellBackend resumed(config);
    SnapshotSource source(mid.bytes().data(), mid.bytes().size(),
                          "lazy-fastpath-test");
    resumed.checkpointLoad(source);
    // Resume the remaining sweeps at their original ticks.
    for (Tick now = half + interval; now <= full; now += interval) {
        for (LineIndex line = 0; line < resumed.lineCount(); ++line) {
            resumed.noteVisit(line, now);
            if (resumed.lightDetectClean(line, now))
                continue;
            const FullDecodeOutcome outcome =
                resumed.fullDecode(line, now);
            if (outcome.uncorrectable)
                resumed.repairUncorrectable(line, now);
            else if (outcome.errors >= 1)
                resumed.scrubRewrite(line, now);
        }
    }
    SnapshotSink resumedSink;
    resumed.checkpointSave(resumedSink);

    // The hand-rolled loop above must mirror LightDetectScrub's
    // visit sequence for the byte comparison to be meaningful; if
    // the policy changes shape, fix the loop rather than weaken the
    // assertion.
    EXPECT_EQ(resumedSink.bytes(), straightSink.bytes());
}

TEST(LazyFastPath, RestoredStateRebuildsKernelizedCrossingsOnBothPaths)
{
    // After checkpointLoad bumps the lazy epoch, the next sweep
    // rebuilds every crossing through the batched kernel. That
    // rebuild must be bit-identical whether dispatch lands on the
    // AVX2 kernel or the scalar oracle loop, and both must match a
    // straight-through run that never restored at all.
    CellBackendConfig config;
    config.lines = 96;
    config.scheme = EccScheme::bch(4);
    config.seed = 11;
    const Tick interval = secondsToTicks(600.0);
    const Tick half = secondsToTicks(2.0 * 3600.0);
    const Tick full = secondsToTicks(4.0 * 3600.0);

    CellBackend straight(config);
    LightDetectScrub straightPolicy(interval);
    runScrub(straight, straightPolicy, full);
    SnapshotSink straightSink;
    straight.checkpointSave(straightSink);

    // Age a backend halfway and capture the snapshot the two
    // restore runs will share.
    CellBackend first(config);
    LightDetectScrub firstPolicy(interval);
    runScrub(first, firstPolicy, half);
    SnapshotSink mid;
    first.checkpointSave(mid);

    const bool simdWasEnabled = simd::enabled();
    std::vector<std::uint8_t> finals[2];
    for (const bool useSimd : {true, false}) {
        simd::setEnabled(useSimd);
        CellBackend resumed(config);
        SnapshotSource source(mid.bytes().data(), mid.bytes().size(),
                              "lazy-fastpath-test");
        resumed.checkpointLoad(source);
        // Mirror LightDetectScrub's visit sequence, as above.
        for (Tick now = half + interval; now <= full;
             now += interval) {
            for (LineIndex line = 0; line < resumed.lineCount();
                 ++line) {
                resumed.noteVisit(line, now);
                if (resumed.lightDetectClean(line, now))
                    continue;
                const FullDecodeOutcome outcome =
                    resumed.fullDecode(line, now);
                if (outcome.uncorrectable)
                    resumed.repairUncorrectable(line, now);
                else if (outcome.errors >= 1)
                    resumed.scrubRewrite(line, now);
            }
        }
        SnapshotSink sink;
        resumed.checkpointSave(sink);
        finals[useSimd ? 0 : 1] = sink.takeBytes();
    }
    simd::setEnabled(simdWasEnabled);

    EXPECT_EQ(finals[0], finals[1])
        << "post-restore rebuild diverges between AVX2 and scalar";
    EXPECT_EQ(finals[0], straightSink.bytes())
        << "post-restore rebuild diverges from a straight-through run";
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for ShardPlan, the fixed geometry-only partition of the line
 * population that underpins bit-identical parallel runs.
 */

#include <gtest/gtest.h>

#include "common/shard.hh"

namespace pcmscrub {
namespace {

TEST(ShardPlan, CoversEveryLineExactlyOnce)
{
    const ShardPlan plan(10000, 64);
    std::uint64_t covered = 0;
    std::uint64_t expectedBegin = 0;
    for (std::size_t shard = 0; shard < plan.count(); ++shard) {
        const ShardRange range = plan.range(shard);
        EXPECT_EQ(range.begin, expectedBegin);
        EXPECT_GT(range.end, range.begin) << "empty shard " << shard;
        covered += range.size();
        expectedBegin = range.end;
    }
    EXPECT_EQ(covered, 10000u);
    EXPECT_EQ(expectedBegin, 10000u);
}

TEST(ShardPlan, ShardOfAgreesWithRanges)
{
    const ShardPlan plan(4097, 0);
    for (std::size_t shard = 0; shard < plan.count(); ++shard) {
        const ShardRange range = plan.range(shard);
        EXPECT_EQ(plan.shardOf(range.begin), shard);
        EXPECT_EQ(plan.shardOf(range.end - 1), shard);
    }
}

TEST(ShardPlan, ZeroRequestsDefaultShardCount)
{
    const ShardPlan plan(1 << 20, 0);
    EXPECT_EQ(plan.count(), ShardPlan::kDefaultShards);
}

TEST(ShardPlan, ClampsToPopulation)
{
    EXPECT_EQ(ShardPlan(3, 64).count(), 3u);
    EXPECT_EQ(ShardPlan(1, 64).count(), 1u);
    EXPECT_EQ(ShardPlan(5, 5).count(), 5u);
}

TEST(ShardPlan, TinyPopulationsNeverProduceEmptyShards)
{
    for (std::uint64_t lines = 1; lines <= 130; ++lines) {
        const ShardPlan plan(lines, 0);
        std::uint64_t covered = 0;
        for (std::size_t shard = 0; shard < plan.count(); ++shard) {
            EXPECT_GT(plan.range(shard).size(), 0u)
                << lines << " lines, shard " << shard;
            covered += plan.range(shard).size();
        }
        EXPECT_EQ(covered, lines);
    }
}

TEST(ShardPlan, PlanIsGeometryOnly)
{
    // The same geometry always yields the same partition — the plan
    // has no dependence on thread count or any runtime state, which
    // is what makes per-shard RNG streams reproducible.
    const ShardPlan a(8192, 0);
    const ShardPlan b(8192, 0);
    ASSERT_EQ(a.count(), b.count());
    for (std::size_t shard = 0; shard < a.count(); ++shard) {
        EXPECT_EQ(a.range(shard).begin, b.range(shard).begin);
        EXPECT_EQ(a.range(shard).end, b.range(shard).end);
    }
}

} // namespace
} // namespace pcmscrub

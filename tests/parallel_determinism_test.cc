/**
 * @file
 * The determinism contract of the sharded parallel engine: a run at
 * any thread count is bit-identical to the serial run — every
 * ScrubMetrics counter (including floating-point energy sums), the
 * fault-injector bookkeeping, and the final per-line device state.
 *
 * The tests drive full pipelines (combined policy, demand writes,
 * fault campaign attached) on both backends at 1, 2, 4, and 8
 * threads and compare the complete outcome against the 1-thread
 * baseline. Exact equality is intentional: any nondeterminism in
 * shard ownership, RNG stream use, or reduction order shows up here
 * as a hard failure, not a statistical drift.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "common/serialize.hh"
#include "common/thread_pool.hh"
#include "pcm/array.hh"
#include "faults/fault_injector.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"
#include "scrub/factory.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);
constexpr Tick kDay = secondsToTicks(86400.0);

const unsigned kThreadCounts[] = {1, 2, 4, 8};

/** Restore the global pool to serial so other tests see the default. */
class SerialAfter : public ::testing::Test
{
  protected:
    void TearDown() override { ThreadPool::global().resize(1); }
};

class ParallelDeterminismCell : public SerialAfter {};
class ParallelDeterminismAnalytic : public SerialAfter {};

void
expectEnergyEqual(const EnergyAccount &a, const EnergyAccount &b)
{
    for (unsigned c = 0;
         c < static_cast<unsigned>(EnergyCategory::NumCategories); ++c) {
        const auto category = static_cast<EnergyCategory>(c);
        // Bit-identical, not approximately equal: per-shard partial
        // sums merge in ascending shard order at any thread count.
        EXPECT_EQ(a.get(category), b.get(category))
            << "energy category " << energyCategoryName(category);
    }
}

void
expectMetricsEqual(const ScrubMetrics &a, const ScrubMetrics &b)
{
    EXPECT_EQ(a.linesChecked, b.linesChecked);
    EXPECT_EQ(a.lightDetects, b.lightDetects);
    EXPECT_EQ(a.eccChecks, b.eccChecks);
    EXPECT_EQ(a.fullDecodes, b.fullDecodes);
    EXPECT_EQ(a.marginScans, b.marginScans);
    EXPECT_EQ(a.scrubRewrites, b.scrubRewrites);
    EXPECT_EQ(a.preventiveRewrites, b.preventiveRewrites);
    EXPECT_EQ(a.piggybackRewrites, b.piggybackRewrites);
    EXPECT_EQ(a.correctedErrors, b.correctedErrors);
    EXPECT_EQ(a.scrubUncorrectable, b.scrubUncorrectable);
    EXPECT_EQ(a.demandUncorrectable, b.demandUncorrectable);
    EXPECT_EQ(a.cellsWornOut, b.cellsWornOut);
    EXPECT_EQ(a.demandWrites, b.demandWrites);
    EXPECT_EQ(a.detectorMisses, b.detectorMisses);
    EXPECT_EQ(a.miscorrections, b.miscorrections);
    EXPECT_EQ(a.ueRetries, b.ueRetries);
    EXPECT_EQ(a.ueRetryResolved, b.ueRetryResolved);
    EXPECT_EQ(a.ueEcpRepaired, b.ueEcpRepaired);
    EXPECT_EQ(a.ueRetired, b.ueRetired);
    EXPECT_EQ(a.ueSlcFallbacks, b.ueSlcFallbacks);
    EXPECT_EQ(a.ueSurfaced, b.ueSurfaced);
    EXPECT_EQ(a.sparesRemaining, b.sparesRemaining);
    EXPECT_EQ(a.capacityLostBits, b.capacityLostBits);
    expectEnergyEqual(a.energy, b.energy);
}

void
expectInjectorEqual(const FaultInjectorStats &a,
                    const FaultInjectorStats &b)
{
    EXPECT_EQ(a.stuckCellsInjected, b.stuckCellsInjected);
    EXPECT_EQ(a.transientFlips, b.transientFlips);
    EXPECT_EQ(a.bursts, b.bursts);
    EXPECT_EQ(a.miscorrections, b.miscorrections);
    EXPECT_EQ(a.metadataCorruptions, b.metadataCorruptions);
    EXPECT_EQ(a.droppedInjections, b.droppedInjections);
}

// Cell-accurate backend -------------------------------------------

/** Complete observable outcome of a cell-backend run. */
struct CellOutcome
{
    ScrubMetrics metrics;
    FaultInjectorStats faults;
    std::vector<BitVector> intended;
    std::vector<Tick> lastWrite;
    std::vector<std::uint64_t> lineWrites;
    std::vector<unsigned> trueErrors;
    std::vector<unsigned> stuckCells;
    std::vector<bool> slc;
};

void
expectCellOutcomeEqual(const CellOutcome &a, const CellOutcome &b)
{
    expectMetricsEqual(a.metrics, b.metrics);
    expectInjectorEqual(a.faults, b.faults);
    ASSERT_EQ(a.intended.size(), b.intended.size());
    for (std::size_t line = 0; line < a.intended.size(); ++line) {
        EXPECT_EQ(a.intended[line], b.intended[line]) << "line " << line;
        EXPECT_EQ(a.lastWrite[line], b.lastWrite[line]) << "line " << line;
        EXPECT_EQ(a.lineWrites[line], b.lineWrites[line])
            << "line " << line;
        EXPECT_EQ(a.trueErrors[line], b.trueErrors[line])
            << "line " << line;
        EXPECT_EQ(a.stuckCells[line], b.stuckCells[line])
            << "line " << line;
        EXPECT_EQ(a.slc[line], b.slc[line]) << "line " << line;
    }
}

/**
 * One full cell-backend pipeline: combined policy, Poisson demand
 * writes, and a fault campaign injecting stuck cells, disturb flips,
 * bursts, and miscorrections. Everything is derived from `seed`.
 */
CellOutcome
runCellPipeline(std::uint64_t seed, unsigned threads,
                bool heavy_faults = false)
{
    ThreadPool::global().resize(threads);

    CellBackendConfig config;
    config.lines = 192;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 4;
    config.seed = seed;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 2;
    // Ample spares: the pool never runs dry, so retirement outcomes
    // cannot depend on cross-shard arrival order at the last spare.
    config.degradation.spareLines = 64;
    config.degradation.slcFallback = true;
    if (heavy_faults) {
        // A saturating campaign retires lines wholesale; keep the
        // spare pool inexhaustible so the only thing under test is
        // the batched fault sampling, not the (documented)
        // arrival-order sensitivity at the last spare.
        config.degradation.spareLines = 2 * config.lines;
    }
    CellBackend device(config);

    FaultCampaignConfig campaign;
    campaign.stuckPerWrite = 0.05;
    campaign.disturbFlipsPerRead = 0.1;
    campaign.burstProbPerRead = 0.02;
    campaign.burstBits = 6;
    campaign.miscorrectionProb = 0.01;
    campaign.metadataCorruptionProb = 0.01;
    campaign.seed = seed * 31 + 5;
    if (heavy_faults) {
        // Drive the batched deposit paths hard: stuck budgets large
        // enough to saturate whole lines (exercising the drop
        // accounting), Poisson disturb rates past the cached-exp
        // fast path, and bursts wide enough to straddle word
        // boundaries.
        campaign.stuckPerWrite = 64.0;
        campaign.disturbFlipsPerRead = 1.5;
        campaign.burstProbPerRead = 0.5;
        campaign.burstBits = 13;
    }
    FaultInjector injector(campaign);
    device.setFaultInjector(&injector);

    PolicySpec spec;
    spec.kind = PolicyKind::Combined;
    spec.targetLineUeProb = 1e-7;
    spec.rewriteThreshold = 2;
    spec.rewriteHeadroom = 2;
    spec.linesPerRegion = 16;
    const auto policy = makePolicy(spec, device);

    // Interleave Poisson demand writes with policy wakes; the write
    // sequence is a function of `seed` alone.
    const Tick horizon = 2 * kDay;
    Random demand(seed + 1);
    const double writeRate = 2e-5; // per line per second
    double nextWrite =
        demand.exponential(writeRate * static_cast<double>(config.lines));
    while (true) {
        const Tick scrubAt = policy->nextWake();
        const Tick writeAt = secondsToTicks(nextWrite);
        if (scrubAt > horizon && writeAt > horizon)
            break;
        if (writeAt <= scrubAt) {
            device.demandWrite(demand.uniformInt(config.lines), writeAt);
            nextWrite += demand.exponential(
                writeRate * static_cast<double>(config.lines));
        } else {
            policy->wake(device, scrubAt);
        }
    }

    CellOutcome out;
    out.metrics = device.metrics();
    out.faults = injector.stats();
    for (LineIndex line = 0; line < device.lineCount(); ++line) {
        const Line &cells = device.array().line(line);
        out.intended.push_back(cells.intendedWord());
        out.lastWrite.push_back(cells.lastWriteTick());
        out.lineWrites.push_back(cells.lineWrites());
        out.trueErrors.push_back(
            cells.trueBitErrors(horizon, device.array().model()));
        out.stuckCells.push_back(cells.stuckCellCount());
        out.slc.push_back(cells.slcMode());
    }
    return out;
}

TEST_F(ParallelDeterminismCell, BitIdenticalAtAnyThreadCount)
{
    for (const std::uint64_t seed : {3ull, 11ull, 42ull}) {
        const CellOutcome serial = runCellPipeline(seed, 1);
        for (const unsigned threads : kThreadCounts) {
            if (threads == 1)
                continue;
            SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                         std::to_string(threads));
            expectCellOutcomeEqual(serial,
                                   runCellPipeline(seed, threads));
        }
    }
}

TEST_F(ParallelDeterminismCell, HeavyFaultBatchingBitIdentical)
{
    // The saturating campaign forces every batched fault mechanism
    // at once — full-line stuck saturation (dropped injections),
    // multi-flip Poisson disturb, word-straddling bursts — and the
    // outcome must still not depend on how shards land on threads.
    const CellOutcome serial =
        runCellPipeline(13, 1, /*heavy_faults=*/true);
    // A campaign this hot must actually saturate lines; otherwise the
    // drop-accounting comparison below is vacuous.
    EXPECT_GT(serial.faults.droppedInjections, 0u);
    for (const unsigned threads : {2u, 4u, 8u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        expectCellOutcomeEqual(
            serial, runCellPipeline(13, threads, /*heavy_faults=*/true));
    }
}

TEST_F(ParallelDeterminismCell, RepeatedSerialRunsAreIdentical)
{
    // Sanity anchor: the pipeline itself is deterministic before any
    // parallelism enters the picture.
    expectCellOutcomeEqual(runCellPipeline(7, 1), runCellPipeline(7, 1));
}

/**
 * Serialized array bytes plus the reduced program stats after a
 * sharded warm-up write: the complete observable outcome of
 * CellArray::writeRandomAll.
 */
struct WarmupOutcome
{
    LineProgramStats stats;
    std::vector<std::uint8_t> bytes;
};

WarmupOutcome
runWarmup(std::uint64_t seed, unsigned threads)
{
    ThreadPool::global().resize(threads);
    DeviceConfig config;
    CellArray array(96, 592, config, seed);
    WarmupOutcome out;
    out.stats = array.writeRandomAll(secondsToTicks(5.0));
    SnapshotSink sink;
    array.saveState(sink);
    out.bytes = sink.takeBytes();
    return out;
}

TEST_F(ParallelDeterminismCell, WriteRandomAllBitIdentical)
{
    // Warm-up writes draw from per-line counter-based streams, so the
    // serialized cell state — every float of it — must not depend on
    // how lines land on worker threads.
    for (const std::uint64_t seed : {5ull, 21ull}) {
        const WarmupOutcome serial = runWarmup(seed, 1);
        for (const unsigned threads : kThreadCounts) {
            if (threads == 1)
                continue;
            SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                         std::to_string(threads));
            const WarmupOutcome parallel = runWarmup(seed, threads);
            EXPECT_EQ(serial.stats.cellsProgrammed,
                      parallel.stats.cellsProgrammed);
            EXPECT_EQ(serial.stats.totalIterations,
                      parallel.stats.totalIterations);
            EXPECT_EQ(serial.stats.cellsWornOut,
                      parallel.stats.cellsWornOut);
            EXPECT_EQ(serial.bytes, parallel.bytes);
        }
    }
}

TEST_F(ParallelDeterminismCell, ShardPlanIgnoresThreadCount)
{
    CellBackendConfig config;
    config.lines = 4096;
    config.scheme = EccScheme::bch(4);
    config.seed = 1;

    ThreadPool::global().resize(1);
    CellBackend serial(config);
    ThreadPool::global().resize(8);
    CellBackend parallel(config);

    ASSERT_EQ(serial.shardPlan().count(), parallel.shardPlan().count());
    for (std::size_t s = 0; s < serial.shardPlan().count(); ++s) {
        EXPECT_EQ(serial.shardPlan().range(s).begin,
                  parallel.shardPlan().range(s).begin);
        EXPECT_EQ(serial.shardPlan().range(s).end,
                  parallel.shardPlan().range(s).end);
    }
}

// Analytic backend ------------------------------------------------

/** Complete observable outcome of an analytic-backend run. */
struct AnalyticOutcome
{
    ScrubMetrics metrics;
    FaultInjectorStats faults;
    std::vector<unsigned> trueErrors;
};

void
expectAnalyticOutcomeEqual(const AnalyticOutcome &a,
                           const AnalyticOutcome &b)
{
    expectMetricsEqual(a.metrics, b.metrics);
    expectInjectorEqual(a.faults, b.faults);
    ASSERT_EQ(a.trueErrors.size(), b.trueErrors.size());
    for (std::size_t line = 0; line < a.trueErrors.size(); ++line)
        EXPECT_EQ(a.trueErrors[line], b.trueErrors[line])
            << "line " << line;
}

AnalyticOutcome
runAnalyticPipeline(std::uint64_t seed, unsigned threads,
                    PolicyKind kind)
{
    ThreadPool::global().resize(threads);

    AnalyticConfig config;
    config.lines = 2048;
    config.scheme = EccScheme::bch(8);
    config.demand.writesPerLinePerSecond = 1e-5;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = seed;
    AnalyticBackend device(config);

    FaultCampaignConfig campaign;
    campaign.disturbFlipsPerRead = 0.05;
    campaign.burstProbPerRead = 0.01;
    campaign.burstBits = 4;
    campaign.miscorrectionProb = 0.005;
    campaign.seed = seed * 17 + 3;
    FaultInjector injector(campaign);
    device.setFaultInjector(&injector);

    PolicySpec spec;
    spec.kind = kind;
    spec.interval = 6 * kHour;
    spec.targetLineUeProb = 1e-7;
    spec.rewriteThreshold = 6;
    spec.rewriteHeadroom = 2;
    spec.linesPerRegion = 64;
    const auto policy = makePolicy(spec, device);
    runScrub(device, *policy, 4 * kDay);

    AnalyticOutcome out;
    out.metrics = device.metrics();
    out.faults = injector.stats();
    for (LineIndex line = 0; line < device.lineCount(); ++line)
        out.trueErrors.push_back(device.trueErrors(line, 4 * kDay));
    return out;
}

TEST_F(ParallelDeterminismAnalytic, BitIdenticalAtAnyThreadCount)
{
    for (const std::uint64_t seed : {2ull, 19ull}) {
        const AnalyticOutcome serial =
            runAnalyticPipeline(seed, 1, PolicyKind::Combined);
        for (const unsigned threads : kThreadCounts) {
            if (threads == 1)
                continue;
            SCOPED_TRACE("seed " + std::to_string(seed) + ", threads " +
                         std::to_string(threads));
            expectAnalyticOutcomeEqual(
                serial, runAnalyticPipeline(seed, threads,
                                            PolicyKind::Combined));
        }
    }
}

TEST_F(ParallelDeterminismAnalytic, SweepFamilyAlsoBitIdentical)
{
    // The plain periodic sweep exercises the SweepScrub parallel
    // loop rather than the adaptive region scheduler.
    const AnalyticOutcome serial =
        runAnalyticPipeline(23, 1, PolicyKind::Threshold);
    for (const unsigned threads : {2u, 8u}) {
        SCOPED_TRACE("threads " + std::to_string(threads));
        expectAnalyticOutcomeEqual(
            serial, runAnalyticPipeline(23, threads,
                                        PolicyKind::Threshold));
    }
}

} // namespace
} // namespace pcmscrub

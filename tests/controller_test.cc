/**
 * @file
 * Tests for the bank-contention memory-controller model.
 */

#include <gtest/gtest.h>

#include "mem/controller.hh"

namespace pcmscrub {
namespace {

MemGeometry
smallGeo()
{
    return MemGeometry(1, 2, 64, 4); // 2 banks, 512 lines.
}

BankTiming
testTiming()
{
    BankTiming t;
    t.readOccupancy = 100;
    // Most tests here exercise queueing arithmetic; keep hits and
    // misses equal so the numbers stay simple. Row-buffer behaviour
    // has its own tests below with distinct timings.
    t.rowHitOccupancy = 100;
    t.writeOccupancy = 1000;
    return t;
}

MemRequest
makeReq(ReqType type, LineIndex line, Tick arrival)
{
    MemRequest req;
    req.type = type;
    req.line = line;
    req.arrival = arrival;
    return req;
}

TEST(Controller, UncontendedReadLatencyIsOccupancy)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest req = makeReq(ReqType::Read, 0, 1000);
    EXPECT_EQ(ctrl.submit(req), 1100u);
    EXPECT_EQ(req.start, 1000u);
    EXPECT_EQ(ctrl.readLatency().mean(), 100.0);
}

TEST(Controller, BackToBackReadsOnOneBankQueue)
{
    MemoryController ctrl(smallGeo(), testTiming());
    // Lines 0 and 2 share bank 0 (two banks, channel-interleaved).
    MemRequest a = makeReq(ReqType::Read, 0, 0);
    MemRequest b = makeReq(ReqType::Read, 2, 0);
    ctrl.submit(a);
    ctrl.submit(b);
    EXPECT_EQ(a.completion, 100u);
    EXPECT_EQ(b.start, 100u);
    EXPECT_EQ(b.completion, 200u);
}

TEST(Controller, ReadsOnDifferentBanksProceedInParallel)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest a = makeReq(ReqType::Read, 0, 0); // bank 0
    MemRequest b = makeReq(ReqType::Read, 1, 0); // bank 1
    ctrl.submit(a);
    ctrl.submit(b);
    EXPECT_EQ(a.completion, 100u);
    EXPECT_EQ(b.completion, 100u);
}

TEST(Controller, BufferedWriteDoesNotDelayLaterRead)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest w = makeReq(ReqType::Write, 0, 0);
    ctrl.submit(w);
    // The write is buffered; a read arriving immediately afterwards
    // on the same bank must not wait behind it.
    MemRequest r = makeReq(ReqType::Read, 2, 10);
    ctrl.submit(r);
    EXPECT_EQ(r.start, 10u);
    EXPECT_EQ(r.completion, 110u);
}

TEST(Controller, IdleGapDrainsBufferedWrite)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest w = makeReq(ReqType::Write, 0, 0);
    ctrl.submit(w);
    // A read arriving after a gap much larger than the write
    // occupancy finds the write already drained.
    MemRequest r = makeReq(ReqType::Read, 2, 5000);
    ctrl.submit(r);
    EXPECT_EQ(ctrl.counters().get("opportunistic_writes"), 1u);
    EXPECT_EQ(r.start, 5000u);
}

TEST(Controller, ReadBehindInProgressDrainWaits)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest w = makeReq(ReqType::Write, 0, 0);
    ctrl.submit(w);
    // Gap of 1500 ticks: drain starts at 0, finishes at 1000. A read
    // arriving at 500 (mid-drain) must wait until 1000... but the
    // drain decision happens when the read is submitted, and the
    // model drains only ops that *fit* before the arrival. At 1500
    // the write (0..1000) fits, so the read starts on time.
    MemRequest r = makeReq(ReqType::Read, 2, 1500);
    ctrl.submit(r);
    EXPECT_EQ(r.start, 1500u);
    // A subsequent read at 1600 is unaffected too.
    MemRequest r2 = makeReq(ReqType::Read, 2, 1600);
    ctrl.submit(r2);
    EXPECT_EQ(r2.completion, 1700u);
}

TEST(Controller, ForcedDrainAboveHighWatermarkBlocksReads)
{
    ControllerConfig config;
    config.writeQueueHigh = 4;
    config.writeQueueLow = 0;
    MemoryController ctrl(smallGeo(), testTiming(), config);
    // Five writes to bank 0 back-to-back exceed the watermark.
    for (int i = 0; i < 5; ++i) {
        MemRequest w = makeReq(ReqType::Write, 0, 10);
        ctrl.submit(w);
    }
    MemRequest r = makeReq(ReqType::Read, 2, 11);
    ctrl.submit(r);
    EXPECT_EQ(ctrl.counters().get("forced_write_drains"), 1u);
    // All five writes drained starting at tick 10: bank busy until
    // 5010, so the read waits.
    EXPECT_EQ(r.start, 5010u);
    EXPECT_GT(ctrl.readLatency().mean(), 4000.0);
}

TEST(Controller, WriteDrainStopsAtLowWatermark)
{
    ControllerConfig config;
    config.writeQueueHigh = 4;
    config.writeQueueLow = 2;
    MemoryController ctrl(smallGeo(), testTiming(), config);
    for (int i = 0; i < 5; ++i) {
        MemRequest w = makeReq(ReqType::Write, 0, 10);
        ctrl.submit(w);
    }
    // Five queued writes exceed the high watermark; the forced drain
    // on the next submit runs only down to the low watermark.
    MemRequest r = makeReq(ReqType::Read, 2, 11);
    ctrl.submit(r);
    EXPECT_EQ(ctrl.counters().get("forced_write_drains"), 1u);
    EXPECT_EQ(ctrl.counters().get("write"), 3u);
    EXPECT_EQ(r.start, 3010u);
    ctrl.drainAll();
    EXPECT_EQ(ctrl.counters().get("write"), 5u);
}

TEST(Controller, QueueAtHighWatermarkDoesNotForceDrain)
{
    ControllerConfig config;
    config.writeQueueHigh = 4;
    config.writeQueueLow = 2;
    MemoryController ctrl(smallGeo(), testTiming(), config);
    for (int i = 0; i < 4; ++i) {
        MemRequest w = makeReq(ReqType::Write, 0, 10);
        ctrl.submit(w);
    }
    // Exactly the watermark: hysteresis requires *exceeding* it, and
    // the 1-tick gap is too small for an opportunistic drain.
    MemRequest r = makeReq(ReqType::Read, 2, 11);
    ctrl.submit(r);
    EXPECT_EQ(ctrl.counters().get("forced_write_drains"), 0u);
    EXPECT_EQ(r.start, 11u);
}

TEST(Controller, ScrubDrainHonoursBothWatermarks)
{
    ControllerConfig config;
    config.scrubQueueHigh = 3;
    config.scrubQueueLow = 1;
    MemoryController ctrl(smallGeo(), testTiming(), config);
    for (int i = 0; i < 4; ++i) {
        MemRequest s = makeReq(ReqType::ScrubCheck, 0, 0);
        ctrl.submit(s);
    }
    MemRequest r = makeReq(ReqType::Read, 2, 1);
    ctrl.submit(r);
    EXPECT_EQ(ctrl.counters().get("forced_scrub_drains"), 1u);
    // Drained from four queued checks down to one.
    EXPECT_EQ(ctrl.counters().get("scrub_check"), 3u);
    EXPECT_EQ(r.start, 300u);
}

TEST(Controller, RetryReadBypassesQueuesAtItsOwnOccupancy)
{
    BankTiming timing = testTiming();
    timing.retryReadOccupancy = 150;
    MemoryController ctrl(smallGeo(), timing);
    MemRequest w = makeReq(ReqType::Write, 0, 0);
    ctrl.submit(w);
    // A retry read is critical-path work: it does not wait behind
    // buffered writes and pays its widened-margin occupancy.
    MemRequest rr = makeReq(ReqType::RetryRead, 2, 10);
    ctrl.submit(rr);
    EXPECT_EQ(rr.start, 10u);
    EXPECT_EQ(rr.completion, 160u);
    // The slow sensing pass ignores the row buffer: a same-row retry
    // pays full occupancy again.
    MemRequest rr2 = makeReq(ReqType::RetryRead, 2, 200);
    ctrl.submit(rr2);
    EXPECT_EQ(rr2.completion, 350u);
    EXPECT_EQ(ctrl.counters().get("retry_read"), 2u);
}

TEST(Controller, ScrubChecksRunOnlyInComfortableGaps)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest s = makeReq(ReqType::ScrubCheck, 0, 0);
    ctrl.submit(s);
    // A read arriving with a gap smaller than scrubGapMultiple *
    // writeOccupancy (2 * 1000) does not trigger the scrub.
    MemRequest r1 = makeReq(ReqType::Read, 2, 1000);
    ctrl.submit(r1);
    EXPECT_EQ(ctrl.counters().get("opportunistic_scrubs"), 0u);
    EXPECT_EQ(r1.start, 1000u);
    // A later read with a large gap lets the scrub run.
    MemRequest r2 = makeReq(ReqType::Read, 2, 10000);
    ctrl.submit(r2);
    EXPECT_EQ(ctrl.counters().get("opportunistic_scrubs"), 1u);
    EXPECT_EQ(r2.start, 10000u);
}

TEST(Controller, DrainAllFlushesEverything)
{
    MemoryController ctrl(smallGeo(), testTiming());
    for (int i = 0; i < 3; ++i) {
        MemRequest w = makeReq(ReqType::Write, 0, 0);
        ctrl.submit(w);
        MemRequest s = makeReq(ReqType::ScrubRewrite, 1, 0);
        ctrl.submit(s);
    }
    ctrl.drainAll();
    EXPECT_EQ(ctrl.counters().get("write"), 3u);
    EXPECT_EQ(ctrl.counters().get("scrub_rewrite"), 3u);
}

TEST(Controller, UtilizationReflectsLoad)
{
    MemoryController light(smallGeo(), testTiming());
    MemoryController heavy(smallGeo(), testTiming());
    for (Tick t = 0; t < 100; ++t) {
        MemRequest a = makeReq(ReqType::Read, 0, t * 1000);
        light.submit(a);
        MemRequest b = makeReq(ReqType::Read, 0, t * 1000);
        MemRequest c = makeReq(ReqType::Read, 2, t * 1000 + 10);
        MemRequest d = makeReq(ReqType::Read, 0, t * 1000 + 20);
        heavy.submit(b);
        heavy.submit(c);
        heavy.submit(d);
    }
    EXPECT_GT(heavy.utilization(), light.utilization());
    EXPECT_LE(heavy.utilization(), 1.0);
}

TEST(Controller, ScrubDelayIsMeasured)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest s = makeReq(ReqType::ScrubCheck, 0, 0);
    ctrl.submit(s);
    MemRequest r = makeReq(ReqType::Read, 2, 50000);
    ctrl.submit(r);
    ASSERT_EQ(ctrl.scrubDelay().count(), 1u);
    EXPECT_GE(ctrl.scrubDelay().mean(), 0.0);
}

TEST(Controller, RowBufferHitsAreFaster)
{
    BankTiming timing;
    timing.readOccupancy = 100;
    timing.rowHitOccupancy = 40;
    timing.writeOccupancy = 1000;
    // Geometry 1 channel x 2 banks x 64 rows x 4 lines/row: lines
    // 0, 2, 4, 6 share bank 0; lines 0..7 share row 0.
    MemoryController ctrl(smallGeo(), timing);
    MemRequest a = makeReq(ReqType::Read, 0, 0);
    ctrl.submit(a);
    EXPECT_EQ(a.completion, 100u); // Cold row: miss.
    MemRequest b = makeReq(ReqType::Read, 2, 200);
    ctrl.submit(b);
    EXPECT_EQ(b.completion, 240u); // Same row: hit.
    // Line 16 maps to bank 0, row 2: miss again.
    MemRequest c = makeReq(ReqType::Read, 16, 400);
    ctrl.submit(c);
    EXPECT_EQ(c.completion, 500u);
    EXPECT_EQ(ctrl.counters().get("row_hits"), 1u);
    EXPECT_EQ(ctrl.counters().get("row_misses"), 2u);
    EXPECT_NEAR(ctrl.rowHitRate(), 1.0 / 3.0, 1e-12);
}

TEST(Controller, WritesOpenRowsForLaterReads)
{
    BankTiming timing;
    timing.readOccupancy = 100;
    timing.rowHitOccupancy = 40;
    timing.writeOccupancy = 1000;
    MemoryController ctrl(smallGeo(), timing);
    // Buffered write to line 0 drains in the idle gap, leaving its
    // row open; a later read of the same row hits.
    MemRequest w = makeReq(ReqType::Write, 0, 0);
    ctrl.submit(w);
    MemRequest r = makeReq(ReqType::Read, 4, 10000); // Row 0 too.
    ctrl.submit(r);
    EXPECT_EQ(r.completion, 10040u);
}

TEST(ControllerDeath, OutOfOrderArrivalPanics)
{
    MemoryController ctrl(smallGeo(), testTiming());
    MemRequest a = makeReq(ReqType::Read, 0, 100);
    ctrl.submit(a);
    MemRequest b = makeReq(ReqType::Read, 0, 50);
    EXPECT_DEATH(ctrl.submit(b), "arrive in order");
}

TEST(ControllerDeath, BadWatermarksAreFatal)
{
    ControllerConfig config;
    config.writeQueueHigh = 2;
    config.writeQueueLow = 5;
    EXPECT_EXIT(MemoryController(smallGeo(), testTiming(), config),
                ::testing::ExitedWithCode(1), "watermark");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Parameterized property tests: invariants that must hold for every
 * scrub policy over every ECC scheme, plus cross-parameter
 * monotonicity sweeps. These are the "does the whole machine stay
 * self-consistent" checks, complementing the behavioural tests.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "scrub/analytic_backend.hh"
#include "scrub/factory.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);
constexpr Tick kDay = secondsToTicks(86400.0);

AnalyticConfig
makeConfig(const EccScheme &scheme, std::uint64_t seed)
{
    AnalyticConfig config;
    config.lines = 512;
    config.scheme = scheme;
    config.demand.writesPerLinePerSecond = 2e-5;
    config.demand.readsPerLinePerSecond = 1e-4;
    config.seed = seed;
    return config;
}

PolicySpec
specFor(PolicyKind kind)
{
    PolicySpec spec;
    spec.kind = kind;
    spec.interval = 6 * kHour;
    spec.rewriteThreshold = 2;
    spec.rewriteHeadroom = 2;
    spec.targetLineUeProb = 1e-7;
    spec.linesPerRegion = 32;
    return spec;
}

/** (policy kind, BCH strength). */
using PolicyPoint = std::tuple<PolicyKind, unsigned>;

class PolicyInvariants
    : public ::testing::TestWithParam<PolicyPoint>
{
};

TEST_P(PolicyInvariants, AccountingStaysConsistent)
{
    const auto [kind, t] = GetParam();
    AnalyticConfig config = makeConfig(EccScheme::bch(t), 17);
    AnalyticBackend backend(config);
    const auto policy = makePolicy(specFor(kind), backend);
    runScrub(backend, *policy, 5 * kDay);
    const ScrubMetrics &m = backend.metrics();

    // Work happened and is internally consistent.
    EXPECT_GT(m.linesChecked, 0u);
    EXPECT_LE(m.fullDecodes, m.linesChecked);
    EXPECT_LE(m.lightDetects, m.linesChecked);
    EXPECT_LE(m.eccChecks, m.linesChecked);
    EXPECT_LE(m.scrubRewrites, m.linesChecked);
    EXPECT_LE(m.preventiveRewrites, m.scrubRewrites);
    EXPECT_LE(m.detectorMisses, m.lightDetects);

    // A gate ran for every check, or the decoder did.
    EXPECT_GE(m.lightDetects + m.eccChecks + m.fullDecodes,
              m.linesChecked);

    // Energy: every category non-negative, reads charged at least
    // once per visited line, writes only if rewrites happened.
    EXPECT_GT(m.energy.get(EnergyCategory::ArrayRead), 0.0);
    if (m.scrubRewrites == 0 && m.scrubUncorrectable == 0) {
        EXPECT_EQ(m.energy.get(EnergyCategory::ArrayWrite), 0.0);
    } else {
        EXPECT_GT(m.energy.get(EnergyCategory::ArrayWrite), 0.0);
    }
    EXPECT_NEAR(m.energy.total(),
                m.energy.get(EnergyCategory::ArrayRead) +
                    m.energy.get(EnergyCategory::MarginRead) +
                    m.energy.get(EnergyCategory::ArrayWrite) +
                    m.energy.get(EnergyCategory::Detect) +
                    m.energy.get(EnergyCategory::Decode),
                1e-6);
}

TEST_P(PolicyInvariants, DeterministicAcrossRuns)
{
    const auto [kind, t] = GetParam();
    ScrubMetrics first;
    for (int run = 0; run < 2; ++run) {
        AnalyticConfig config = makeConfig(EccScheme::bch(t), 23);
        AnalyticBackend backend(config);
        const auto policy = makePolicy(specFor(kind), backend);
        runScrub(backend, *policy, 3 * kDay);
        if (run == 0) {
            first = backend.metrics();
        } else {
            EXPECT_EQ(first.linesChecked,
                      backend.metrics().linesChecked);
            EXPECT_EQ(first.scrubRewrites,
                      backend.metrics().scrubRewrites);
            EXPECT_DOUBLE_EQ(first.energy.total(),
                             backend.metrics().energy.total());
        }
    }
}

TEST_P(PolicyInvariants, NoLineLeftBeyondBudgetAfterFinalSweep)
{
    // After forcing a final full pass with rewrite-on-any-error, no
    // line may exceed the ECC budget (scrub keeps memory sane).
    const auto [kind, t] = GetParam();
    AnalyticConfig config = makeConfig(EccScheme::bch(t), 31);
    AnalyticBackend backend(config);
    const auto policy = makePolicy(specFor(kind), backend);
    const Tick horizon = 5 * kDay;
    runScrub(backend, *policy, horizon);

    BasicScrub finalPass(kHour);
    finalPass.wake(backend, horizon + kHour);
    for (LineIndex line = 0; line < backend.lineCount(); ++line) {
        EXPECT_LE(backend.trueErrors(line, horizon + kHour), t)
            << "line " << line;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyInvariants,
    ::testing::Combine(
        ::testing::Values(PolicyKind::Basic, PolicyKind::StrongEcc,
                          PolicyKind::LightDetect,
                          PolicyKind::Threshold, PolicyKind::Adaptive,
                          PolicyKind::Combined),
        ::testing::Values(4u, 8u)),
    [](const auto &info) {
        return std::string(policyKindName(std::get<0>(info.param))) +
            "_t" + std::to_string(std::get<1>(info.param));
    });

class IntervalMonotonicity
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(IntervalMonotonicity, LongerIntervalsNeverReduceExposure)
{
    // Demand-read exposure to uncorrectable lines must be
    // non-decreasing in the scrub interval: checking less often
    // leaves bad lines uncaught for longer. (Scrub-*event* counts
    // are deliberately not the metric here — past ECC saturation,
    // checking more often detects/repairs/re-detects the same weak
    // lines and inflates the event count.)
    const unsigned t = GetParam();
    double prev = -1.0;
    for (const Tick interval : {3 * kHour, 12 * kHour, 2 * kDay}) {
        AnalyticConfig config = makeConfig(EccScheme::bch(t), 41);
        config.lines = 1024;
        AnalyticBackend backend(config);
        StrongEccScrub policy(interval);
        runScrub(backend, policy, 10 * kDay);
        const double exposure = backend.metrics().demandUncorrectable;
        EXPECT_GE(exposure * 1.05 + 0.5, prev)
            << "interval " << interval;
        prev = exposure;
    }
}

INSTANTIATE_TEST_SUITE_P(Strengths, IntervalMonotonicity,
                         ::testing::Values(1u, 2u, 4u),
                         [](const auto &info) {
                             return "t" + std::to_string(info.param);
                         });

class ThresholdMonotonicity
    : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ThresholdMonotonicity, DeeperThresholdsNeverAddRewrites)
{
    const unsigned seed = GetParam();
    std::uint64_t prev = ~0ull;
    for (const unsigned threshold : {1u, 3u, 5u, 7u}) {
        AnalyticConfig config = makeConfig(EccScheme::bch(8), seed);
        AnalyticBackend backend(config);
        ThresholdScrub policy(6 * kHour, threshold);
        runScrub(backend, policy, 10 * kDay);
        const std::uint64_t rewrites = backend.metrics().scrubRewrites;
        EXPECT_LE(rewrites, prev) << "threshold " << threshold;
        prev = rewrites;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThresholdMonotonicity,
                         ::testing::Values(1u, 2u, 3u),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.param);
                         });

TEST(PropertyCrossCheck, WriteRateReducesScrubWork)
{
    // More demand writes = younger lines = less for scrub to do.
    double prevRewrites = 1e18;
    for (const double rate : {0.0, 1e-5, 1e-4}) {
        AnalyticConfig config = makeConfig(EccScheme::bch(8), 51);
        config.lines = 1024;
        config.demand.writesPerLinePerSecond = rate;
        AnalyticBackend backend(config);
        StrongEccScrub policy(6 * kHour);
        runScrub(backend, policy, 10 * kDay);
        const double rewrites =
            static_cast<double>(backend.metrics().scrubRewrites);
        EXPECT_LT(rewrites, prevRewrites * 1.02) << "rate " << rate;
        prevRewrites = rewrites;
    }
}

TEST(PropertyCrossCheck, StrongerEccNeverHurtsReliability)
{
    double prev = 1e18;
    for (const unsigned t : {1u, 2u, 4u, 8u}) {
        AnalyticConfig config = makeConfig(EccScheme::bch(t), 61);
        config.lines = 1024;
        AnalyticBackend backend(config);
        StrongEccScrub policy(12 * kHour);
        runScrub(backend, policy, 10 * kDay);
        const double ue = backend.metrics().totalUncorrectable();
        EXPECT_LE(ue, prev + 2.0) << "t=" << t;
        prev = ue;
    }
}

} // namespace
} // namespace pcmscrub

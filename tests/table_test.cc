/**
 * @file
 * Tests for the result table / CSV writer.
 */

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "common/table.hh"

namespace pcmscrub {
namespace {

TEST(Table, RowsAndCellsAccumulate)
{
    Table t("demo", {"a", "b"});
    EXPECT_EQ(t.rows(), 0u);
    t.row().cell("x").cell(1.5, 1);
    t.row().cell(std::uint64_t{42}).cell(-3);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvRoundTrip)
{
    Table t("csv", {"policy", "value"});
    t.row().cell("basic").cellSci(1.25e-7, 2);
    t.row().cell("combined").cell(std::uint64_t{7});

    const std::string path = ::testing::TempDir() + "table_test.csv";
    ASSERT_TRUE(t.writeCsv(path));

    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "policy,value");
    std::getline(in, line);
    EXPECT_EQ(line.substr(0, 6), "basic,");
    EXPECT_NE(line.find("e-07"), std::string::npos);
    std::getline(in, line);
    EXPECT_EQ(line, "combined,7");
    std::remove(path.c_str());
}

TEST(Table, CsvFailureReturnsFalse)
{
    Table t("x", {"a"});
    t.row().cell("1");
    EXPECT_FALSE(t.writeCsv("/nonexistent-dir/deeply/file.csv"));
}

TEST(Table, PrintDoesNotCrash)
{
    Table t("print", {"col"});
    t.row().cell("value");
    t.print();
    SUCCEED();
}

TEST(TableDeath, TooManyCellsPanics)
{
    Table t("overflow", {"only"});
    t.row().cell("fits");
    EXPECT_DEATH(t.cell("does not"), "too many cells");
}

TEST(TableDeath, CellBeforeRowPanics)
{
    Table t("norow", {"c"});
    EXPECT_DEATH(t.cell("x"), "cell\\(\\) before row\\(\\)");
}

} // namespace
} // namespace pcmscrub

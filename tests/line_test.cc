/**
 * @file
 * Tests for the line abstraction: Gray-coded storage, differential
 * vs. full writes, drift-clock semantics, and ground-truth errors.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "pcm/line.hh"

namespace pcmscrub {
namespace {

class LineTest : public ::testing::Test
{
  protected:
    LineTest() : model_(config_), rng_(7) {}

    DeviceConfig config_;
    CellModel model_;
    Random rng_;
};

TEST_F(LineTest, GeometryRoundsUpToCells)
{
    EXPECT_EQ(Line(512).cellCount(), 256u);
    EXPECT_EQ(Line(576).cellCount(), 288u);
    EXPECT_EQ(Line(593).cellCount(), 297u); // Odd bit count pads.
}

TEST_F(LineTest, WriteThenImmediateReadIsExact)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    const LineProgramStats stats =
        line.writeCodeword(word, 0, model_, rng_);
    EXPECT_EQ(stats.cellsProgrammed, 256u);
    EXPECT_GE(stats.totalIterations, 256u);
    EXPECT_EQ(line.readCodeword(0, model_), word);
    EXPECT_EQ(line.trueBitErrors(0, model_), 0u);
    EXPECT_EQ(line.lineWrites(), 1u);
}

TEST_F(LineTest, OddCodewordLengthRoundTrips)
{
    Line line(593);
    line.initialize(model_, rng_);
    BitVector word(593);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    EXPECT_EQ(line.readCodeword(0, model_), word);
}

TEST_F(LineTest, DriftCreatesSingleBitErrorsUnderGrayCoding)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);

    // Freeze every cell's drift, then force exactly one cell across
    // its threshold — the single-bit expectation must not depend on
    // whether some naturally fast cell also crosses by `later`.
    for (unsigned i = 0; i < line.cellCount(); ++i)
        line.cell(i).nu = 0.0f;
    for (unsigned i = 0; i < line.cellCount(); ++i) {
        if (line.cell(i).storedLevel == 2) {
            line.cell(i).logR0 = 5.4f;
            line.cell(i).nu = 0.1f;
            break;
        }
    }
    const Tick later = secondsToTicks(1e4); // logR = 5.8 > 5.5.
    EXPECT_EQ(line.trueBitErrors(later, model_), 1u);
}

TEST_F(LineTest, FullRewriteResetsEveryDriftClock)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    const Tick mid = secondsToTicks(1000.0);
    line.writeCodeword(word, mid, model_, rng_, /*differential=*/false);
    for (unsigned i = 0; i < line.cellCount(); ++i)
        EXPECT_EQ(line.cell(i).writeTick, mid) << "cell " << i;
    EXPECT_EQ(line.lastWriteTick(), mid);
}

TEST_F(LineTest, DifferentialRewriteSkipsMatchingCells)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    const Tick mid = secondsToTicks(100.0);
    // Same data, differential: nothing has drifted yet, so no cell
    // should be reprogrammed and every drift clock stays at 0.
    const LineProgramStats stats =
        line.writeCodeword(word, mid, model_, rng_,
                           /*differential=*/true);
    EXPECT_EQ(stats.cellsProgrammed, 0u);
    for (unsigned i = 0; i < line.cellCount(); ++i)
        EXPECT_EQ(line.cell(i).writeTick, 0u) << "cell " << i;
}

TEST_F(LineTest, DifferentialRewriteReprogramsDriftedCells)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    // Drift one cell out of its band.
    unsigned victim = 0;
    for (unsigned i = 0; i < line.cellCount(); ++i) {
        if (line.cell(i).storedLevel == 2) {
            line.cell(i).logR0 = 5.45f;
            line.cell(i).nu = 0.1f;
            victim = i;
            break;
        }
    }
    const Tick later = secondsToTicks(1e4);
    ASSERT_GE(line.trueBitErrors(later, model_), 1u);
    const LineProgramStats stats =
        line.writeCodeword(word, later, model_, rng_,
                           /*differential=*/true);
    EXPECT_GE(stats.cellsProgrammed, 1u);
    EXPECT_EQ(line.cell(victim).writeTick, later);
    EXPECT_EQ(line.trueBitErrors(later, model_), 0u);
}

TEST_F(LineTest, ChangedDataDifferentialTouchesOnlyChangedCells)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    BitVector other = word;
    other.flip(10); // Changes cell 5's target level.
    other.flip(200);
    const LineProgramStats stats =
        line.writeCodeword(other, secondsToTicks(1.0), model_, rng_,
                           /*differential=*/true);
    EXPECT_EQ(stats.cellsProgrammed, 2u);
    EXPECT_EQ(line.readCodeword(secondsToTicks(1.0), model_), other);
}

TEST_F(LineTest, StuckCellProducesPersistentErrors)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    // Freeze one cell at a level that conflicts with new data.
    line.cell(0).stuck = true;
    line.cell(0).stuckLevel =
        (line.cell(0).storedLevel + 2) % mlcLevels;
    EXPECT_EQ(line.stuckCellCount(), 1u);
    EXPECT_GE(line.trueBitErrors(0, model_), 1u);
    // Rewriting cannot fix a stuck cell.
    line.writeCodeword(word, secondsToTicks(10.0), model_, rng_);
    EXPECT_GE(line.trueBitErrors(secondsToTicks(10.0), model_), 1u);
}

TEST_F(LineTest, MarginScanCountsBandedCells)
{
    Line line(512);
    line.initialize(model_, rng_);
    BitVector word(512);
    word.randomize(rng_);
    line.writeCodeword(word, 0, model_, rng_);
    // Park three cells inside their guard band.
    unsigned placed = 0;
    for (unsigned i = 0; i < line.cellCount() && placed < 3; ++i) {
        if (line.cell(i).storedLevel == 1) {
            line.cell(i).logR0 = 4.4f; // Band [4.35, 4.5).
            line.cell(i).nu = 0.0f;
            ++placed;
        }
    }
    ASSERT_EQ(placed, 3u);
    EXPECT_GE(line.marginScanCount(secondsToTicks(2.0), model_), 3u);
}

TEST(LineDeath, WrongCodewordLengthPanics)
{
    DeviceConfig config;
    const CellModel model(config);
    Random rng(1);
    Line line(512);
    line.initialize(model, rng);
    BitVector word(100);
    EXPECT_DEATH(line.writeCodeword(word, 0, model, rng),
                 "codeword of 100 bits");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Focused tests for the adaptive scheduler's risk machinery: the
 * conditional-horizon mathematics and its scheduling consequences.
 */

#include <gtest/gtest.h>

#include "scrub/adaptive_scrub.hh"
#include "scrub/analytic_backend.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);
constexpr Tick kDay = secondsToTicks(86400.0);

AnalyticConfig
quiet(std::uint64_t lines, unsigned t = 8)
{
    AnalyticConfig config;
    config.lines = lines;
    config.scheme = EccScheme::bch(t);
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 77;
    return config;
}

TEST(ConditionalHorizon, ShrinksWithResidualErrors)
{
    const DriftModel model{DeviceConfig{}};
    const double age = 6.0 * 3600.0;
    double prev = 1e18;
    for (const unsigned errors : {0u, 2u, 4u, 6u}) {
        const double horizon = model.timeToConditionalUncorrectable(
            296, 8, errors, age, 1e-7);
        EXPECT_LT(horizon, prev + 1.0) << "errors " << errors;
        EXPECT_GE(horizon, 0.0);
        prev = horizon;
    }
}

TEST(ConditionalHorizon, ZeroWhenAlreadyOverBudget)
{
    const DriftModel model{DeviceConfig{}};
    EXPECT_EQ(model.timeToConditionalUncorrectable(296, 8, 9, 100.0,
                                                   1e-7),
              0.0);
}

TEST(ConditionalHorizon, OldCleanLinesEarnLongHorizons)
{
    // Drift decelerates in absolute time, so a clean line at age
    // one week has a longer remaining horizon than one at age one
    // hour (with the tail conditioned out by the clean observation
    // both start from the same population, but growth slows).
    const DriftModel model{DeviceConfig{}};
    const double young = model.timeToConditionalUncorrectable(
        296, 8, 0, 3600.0, 1e-7);
    const double old = model.timeToConditionalUncorrectable(
        296, 8, 0, 7.0 * 86400.0, 1e-7);
    EXPECT_GT(old, young);
}

TEST(ConditionalHorizon, LooserTargetExtendsHorizon)
{
    const DriftModel model{DeviceConfig{}};
    const double strict = model.timeToConditionalUncorrectable(
        296, 8, 2, 3600.0, 1e-9);
    const double loose = model.timeToConditionalUncorrectable(
        296, 8, 2, 3600.0, 1e-5);
    EXPECT_GT(loose, strict);
}

TEST(AdaptiveScheduler, FirstWakeAtSafeAge)
{
    AnalyticBackend backend(quiet(256));
    AdaptiveParams params;
    params.procedure.eccCheckFirst = true;
    AdaptiveScrub policy(params, backend);
    EXPECT_EQ(policy.nextWake(), policy.safeAgeTicks());
}

TEST(AdaptiveScheduler, ReschedulesForward)
{
    AnalyticBackend backend(quiet(256));
    AdaptiveParams params;
    params.procedure.eccCheckFirst = true;
    AdaptiveScrub policy(params, backend);
    Tick prev = 0;
    for (int wake = 0; wake < 6; ++wake) {
        const Tick when = policy.nextWake();
        ASSERT_GT(when, prev);
        policy.wake(backend, when);
        prev = when;
    }
    EXPECT_EQ(backend.metrics().linesChecked, 6u * 256u);
}

TEST(AdaptiveScheduler, MinSpacingIsRespected)
{
    AnalyticBackend backend(quiet(256, 2)); // Weak ECC: hot horizons.
    AdaptiveParams params;
    params.procedure.eccCheckFirst = true;
    params.procedure.rewriteThreshold = 2; // Leave errors in place.
    params.minSpacingFraction = 0.25;
    AdaptiveScrub policy(params, backend);
    const Tick minSpacing = static_cast<Tick>(
        static_cast<double>(policy.safeAgeTicks()) * 0.25);
    Tick prev = 0;
    for (int wake = 0; wake < 8; ++wake) {
        const Tick when = policy.nextWake();
        if (wake > 0) {
            EXPECT_GE(when - prev, minSpacing) << "wake " << wake;
        }
        policy.wake(backend, when);
        prev = when;
    }
}

TEST(AdaptiveScheduler, DirtyRegionsCheckedMoreOftenThanClean)
{
    // Two identical devices; in one, rewrite-on-any-error keeps
    // residual errors at zero, in the other a deep threshold leaves
    // errors resident. The dirty configuration must check at least
    // as often.
    AnalyticBackend cleanBackend(quiet(512));
    AdaptiveParams cleanParams;
    cleanParams.procedure.eccCheckFirst = true;
    cleanParams.procedure.rewriteThreshold = 1;
    AdaptiveScrub cleanPolicy(cleanParams, cleanBackend);
    runScrub(cleanBackend, cleanPolicy, 6 * kDay);

    AnalyticBackend dirtyBackend(quiet(512));
    AdaptiveParams dirtyParams = cleanParams;
    dirtyParams.procedure.rewriteThreshold = 7;
    AdaptiveScrub dirtyPolicy(dirtyParams, dirtyBackend);
    runScrub(dirtyBackend, dirtyPolicy, 6 * kDay);

    EXPECT_GE(dirtyBackend.metrics().linesChecked,
              cleanBackend.metrics().linesChecked);
    EXPECT_LT(dirtyBackend.metrics().scrubRewrites,
              cleanBackend.metrics().scrubRewrites);
}

TEST(AdaptiveScheduler, CombinedUsesLightDetectAndThreshold)
{
    AnalyticBackend backend(quiet(256));
    CombinedScrub policy(1e-7, 2, backend, 32);
    EXPECT_EQ(policy.name(), "combined");
    EXPECT_TRUE(policy.params().procedure.lightDetectFirst);
    EXPECT_EQ(policy.params().procedure.rewriteThreshold, 6u);
    runScrub(backend, policy, 2 * kDay);
    EXPECT_EQ(backend.metrics().lightDetects,
              backend.metrics().linesChecked);
}

TEST(AdaptiveSchedulerDeath, InvalidParamsAreFatal)
{
    AnalyticBackend backend(quiet(64));
    AdaptiveParams params;
    params.targetLineUeProb = 0.0;
    EXPECT_EXIT(AdaptiveScrub(params, backend),
                ::testing::ExitedWithCode(1), "target");
    AdaptiveParams params2;
    params2.linesPerRegion = 0;
    EXPECT_EXIT(AdaptiveScrub(params2, backend),
                ::testing::ExitedWithCode(1), "region");
}

} // namespace
} // namespace pcmscrub

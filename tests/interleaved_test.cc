/**
 * @file
 * Tests for the interleaving code wrapper (DRAM-style 8 x SECDED).
 */

#include <memory>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/interleaved.hh"
#include "ecc/secded.hh"

namespace pcmscrub {
namespace {

std::unique_ptr<InterleavedCode>
dramLineCode()
{
    return std::make_unique<InterleavedCode>(
        std::make_unique<SecdedCode>(64), 8);
}

TEST(Interleaved, GeometryOfDramLine)
{
    const auto code = dramLineCode();
    EXPECT_EQ(code->dataBits(), 512u);
    EXPECT_EQ(code->codewordBits(), 576u);
    EXPECT_EQ(code->correctableErrors(), 1u);
    EXPECT_EQ(code->ways(), 8u);
    EXPECT_EQ(code->name(), "8xSECDED(72,64)");
}

TEST(Interleaved, CleanRoundTrip)
{
    const auto code = dramLineCode();
    Random rng(1);
    BitVector data(512);
    data.randomize(rng);
    BitVector cw = code->encode(data);
    EXPECT_TRUE(code->check(cw));
    EXPECT_EQ(code->decode(cw).status, DecodeStatus::Clean);
    EXPECT_EQ(code->extractData(cw), data);
}

TEST(Interleaved, OneErrorPerSliceAllCorrected)
{
    // Eight errors, one per slice: each SECDED word fixes its own.
    const auto code = dramLineCode();
    Random rng(2);
    BitVector data(512);
    data.randomize(rng);
    const BitVector clean = code->encode(data);
    BitVector cw = clean;
    for (unsigned w = 0; w < 8; ++w)
        cw.flip(w * 72 + 13);
    const DecodeResult res = code->decode(cw);
    EXPECT_EQ(res.status, DecodeStatus::Corrected);
    EXPECT_EQ(res.correctedBits, 8u);
    EXPECT_EQ(cw, clean);
}

TEST(Interleaved, TwoErrorsInOneSliceUncorrectable)
{
    const auto code = dramLineCode();
    Random rng(3);
    BitVector data(512);
    data.randomize(rng);
    BitVector cw = code->encode(data);
    cw.flip(3 * 72 + 5);
    cw.flip(3 * 72 + 50);
    EXPECT_EQ(code->decode(cw).status, DecodeStatus::Uncorrectable);
}

TEST(Interleaved, MixedCorrectableAndUncorrectableSlices)
{
    const auto code = dramLineCode();
    Random rng(4);
    BitVector data(512);
    data.randomize(rng);
    BitVector cw = code->encode(data);
    cw.flip(0 * 72 + 1);  // slice 0: correctable
    cw.flip(5 * 72 + 2);  // slice 5: two errors, uncorrectable
    cw.flip(5 * 72 + 30);
    const DecodeResult res = code->decode(cw);
    EXPECT_EQ(res.status, DecodeStatus::Uncorrectable);
}

TEST(Interleaved, CheckFailsOnAnyDirtySlice)
{
    const auto code = dramLineCode();
    Random rng(5);
    BitVector data(512);
    data.randomize(rng);
    const BitVector clean = code->encode(data);
    for (const unsigned slice : {0u, 4u, 7u}) {
        BitVector cw = clean;
        cw.flip(slice * 72 + 60);
        EXPECT_FALSE(code->check(cw)) << "slice " << slice;
    }
}

TEST(Interleaved, SingleWayDegeneratesToBase)
{
    const InterleavedCode code(std::make_unique<SecdedCode>(64), 1);
    EXPECT_EQ(code.dataBits(), 64u);
    EXPECT_EQ(code.codewordBits(), 72u);
    Random rng(6);
    BitVector data(64);
    data.randomize(rng);
    BitVector cw = code.encode(data);
    cw.flip(10);
    EXPECT_EQ(code.decode(cw).status, DecodeStatus::Corrected);
    EXPECT_EQ(code.extractData(cw), data);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the cell-accurate array, including a statistical check
 * that array-level drift errors match the analytic model.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "pcm/array.hh"
#include "pcm/drift_model.hh"

namespace pcmscrub {
namespace {

TEST(CellArray, ConstructionAndWarmup)
{
    const DeviceConfig config;
    CellArray array(64, 512, config, 1);
    EXPECT_EQ(array.lineCount(), 64u);
    EXPECT_EQ(array.codewordBits(), 512u);
    const LineProgramStats stats = array.writeRandomAll(0);
    EXPECT_EQ(stats.cellsProgrammed, 64u * 256u);
    EXPECT_EQ(array.totalBitErrors(0), 0u);
    EXPECT_EQ(array.totalStuckCells(), 0u);
}

TEST(CellArray, DeterministicForSameSeed)
{
    const DeviceConfig config;
    CellArray a(16, 512, config, 99);
    CellArray b(16, 512, config, 99);
    a.writeRandomAll(0);
    b.writeRandomAll(0);
    const Tick later = secondsToTicks(1e6);
    EXPECT_EQ(a.totalBitErrors(later), b.totalBitErrors(later));
    EXPECT_EQ(a.line(3).intendedWord(), b.line(3).intendedWord());
}

TEST(CellArray, DifferentSeedsGiveDifferentData)
{
    const DeviceConfig config;
    CellArray a(4, 512, config, 1);
    CellArray b(4, 512, config, 2);
    a.writeRandomAll(0);
    b.writeRandomAll(0);
    EXPECT_NE(a.line(0).intendedWord(), b.line(0).intendedWord());
}

TEST(CellArray, DriftErrorsMatchAnalyticModel)
{
    // The headline cross-validation: ground-truth bit errors in the
    // sampled array at age t should match cells * cellErrorProb(t).
    const DeviceConfig config;
    const DriftModel model(config);
    CellArray array(512, 512, config, 5);
    array.writeRandomAll(0);

    const double t = 86400.0; // One day.
    const std::uint64_t cells = 512 * 256;
    const double expected = cells * model.cellErrorProb(t);
    const double observed =
        static_cast<double>(array.totalBitErrors(secondsToTicks(t)));
    ASSERT_GT(expected, 50.0); // Test is meaningful at this age.
    EXPECT_NEAR(observed, expected,
                5.0 * std::sqrt(expected) + 0.05 * expected);
}

TEST(CellArray, ErrorsGrowWithAge)
{
    const DeviceConfig config;
    CellArray array(256, 512, config, 6);
    array.writeRandomAll(0);
    const std::uint64_t atHour =
        array.totalBitErrors(secondsToTicks(3600.0));
    const std::uint64_t atMonth =
        array.totalBitErrors(secondsToTicks(2.6e6));
    EXPECT_GE(atMonth, atHour);
    EXPECT_GT(atMonth, 0u);
}

TEST(CellArrayDeath, ZeroLinesIsFatal)
{
    const DeviceConfig config;
    EXPECT_DEATH(CellArray(0, 512, config, 1), "at least one line");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * The SIMD/scalar oracle: every vectorized kernel must produce the
 * exact bits of its scalar reference loop, for adversarial plane
 * contents the physics would rarely produce — random quantized
 * bytes, dense stuck sentinels, odd line widths whose planes start
 * at unaligned byte offsets, and sub-vector tails. Each case runs
 * the same computation twice, flipping the simd::setEnabled()
 * switch, and demands equality. On builds or CPUs without AVX2 both
 * runs take the scalar path and the suite degenerates to a (still
 * valid) self-comparison.
 *
 * The BCH cases drive full encode → corrupt → decode round trips so
 * the vector syndrome accumulation and Chien scan are checked
 * through the public API, including the Uncorrectable verdicts that
 * depend on the Chien early-exit contract.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/simd.hh"
#include "ecc/bch.hh"
#include "ecc/bch_simd.hh"
#include "faults/fault_injector.hh"
#include "pcm/cell.hh"
#include "pcm/cell_storage.hh"
#include "pcm/kernels.hh"
#include "pcm/kernels_simd.hh"

namespace pcmscrub {
namespace {

/** Restores the dispatch switch even when an assertion bails out. */
class SimdSwitch
{
  public:
    ~SimdSwitch() { simd::setEnabled(true); }
};

/**
 * Storage with adversarially random plane bytes: quantized values
 * and Gray symbols drawn uniformly, nu indices hitting the stuck
 * sentinel at `stuckFraction`. Several lines, so line > 0 exercises
 * plane base offsets that are not 32-byte (or even 4-byte) aligned
 * when cellsPerLine is odd.
 */
void
randomizePlanes(CellStorage &store, Random &rng, double stuckFraction)
{
    for (std::size_t i = 0; i < store.size(); ++i) {
        store.setRawLogRq(
            i, static_cast<std::uint8_t>(rng.uniformInt(256)));
        store.setGray(i, static_cast<unsigned>(rng.uniformInt(4)));
        std::uint8_t nuIdx =
            static_cast<std::uint8_t>(rng.uniformInt(255));
        if (rng.bernoulli(stuckFraction))
            nuIdx = QuantSpec::kStuckNuIdx;
        store.setRawNuIdx(i, nuIdx);
    }
    for (std::size_t line = 0; line < store.lineCount(); ++line)
        store.setLineMeta(line, secondsToTicks(1.0), 1 + line);
}

/** Cell counts chosen to cover every tail residue and tiny lines. */
const std::size_t kCellCounts[] = {5, 8, 9, 13, 16, 23, 131, 256, 296};

TEST(SimdOracle, SenseMatchesScalarOnRandomPlanes)
{
    SimdSwitch restore;
    const DeviceConfig config;
    for (const std::size_t cells : kCellCounts) {
        for (const double stuckFraction : {0.0, 0.05, 0.5}) {
            CellStorage store;
            CellStorage::Geometry g;
            g.lines = 3;
            g.cellsPerLine = cells;
            g.intendedWordsPerLine = (2 * cells + 63) / 64;
            g.auxPlanes = false;
            g.manufSeed = 7;
            store.configure(g);
            store.ensureSpec(config);
            Random rng(cells * 977 +
                       static_cast<std::uint64_t>(stuckFraction * 100));
            randomizePlanes(store, rng, stuckFraction);

            const std::size_t bits = 2 * cells - 1; // Odd width.
            for (std::size_t line = 0; line < g.lines; ++line) {
                const CellConstSpan span = store.constSpan(line, cells);
                for (const double age : {1.5, 7200.0, 3e6}) {
                    const Tick now = secondsToTicks(age);
                    for (const double shift : {0.0, 0.15}) {
                        SCOPED_TRACE("cells " + std::to_string(cells) +
                                     " line " + std::to_string(line) +
                                     " age " + std::to_string(age));
                        simd::setEnabled(false);
                        const BitVector scalar = kernels::senseCodeword(
                            span, bits, false, config, now, shift);
                        const unsigned scalarMargin =
                            kernels::marginScanCount(span, config, now);
                        simd::setEnabled(true);
                        const BitVector vector = kernels::senseCodeword(
                            span, bits, false, config, now, shift);
                        const unsigned vectorMargin =
                            kernels::marginScanCount(span, config, now);
                        EXPECT_EQ(scalar.countDifferences(vector), 0u);
                        EXPECT_EQ(scalarMargin, vectorMargin);
                    }
                }
            }
        }
    }
}

TEST(SimdOracle, SenseAvx2AgreesWithScalarHelperDirectly)
{
    if (!kernels::simdk::available())
        GTEST_SKIP() << "AVX2 unavailable; dispatch test covers this";
    SimdSwitch restore;
    const DeviceConfig config;
    CellStorage store;
    CellStorage::Geometry g;
    g.lines = 2;
    g.cellsPerLine = 296;
    g.intendedWordsPerLine = 10;
    g.auxPlanes = false;
    g.manufSeed = 11;
    store.configure(g);
    store.ensureSpec(config);
    Random rng(42);
    randomizePlanes(store, rng, 0.1);

    const CellConstSpan span = store.constSpan(1, 296);
    const Tick now = secondsToTicks(9000.0);
    simd::setEnabled(false);
    const BitVector scalar =
        kernels::senseCodeword(span, 592, false, config, now, 0.0);
    const unsigned scalarMargin =
        kernels::marginScanCount(span, config, now);
    const BitVector vector = kernels::simdk::senseCodewordAvx2(
        span, 592, config, now, 0.0);
    EXPECT_EQ(scalar.countDifferences(vector), 0u);
    EXPECT_EQ(scalarMargin,
              kernels::simdk::marginScanCountAvx2(span, config, now));
}

/**
 * The per-cell CellModel loop the lazy-drift kernel replaced —
 * read-at-write-tick target check plus the cleanUntil minimum — as
 * an independent oracle for computeLazyLine.
 */
kernels::LazyLineResult
lazyOracle(const CellStorage &store, const CellModel &model,
           std::size_t line, std::size_t cells)
{
    kernels::LazyLineResult out;
    const Tick writeTick = store.lineLastWriteTick(line);
    const std::uint64_t *words = store.intendedWords(line);
    Tick until = kNeverTick;
    for (std::size_t i = 0; i < cells; ++i) {
        const Cell cell =
            store.loadPhysics(line * store.cellsPerLine() + i);
        if (cell.stuck)
            return out;
        const std::size_t bit = 2 * i;
        const unsigned target = grayToLevel(static_cast<std::uint8_t>(
            (words[bit >> 6] >> (bit & 63u)) & 3u));
        if (model.read(cell, writeTick) != target)
            return out;
        const Tick cellClean = model.cleanUntil(cell);
        if (cellClean < until)
            until = cellClean;
    }
    if (until < writeTick)
        return out;
    out.eligible = true;
    out.cleanUntil = until;
    return out;
}

/**
 * Lazy-eligibility kernel vs the CellModel oracle, on adversarial
 * planes: random quantized codes (which park crossings at every
 * magnitude, including the near-overflow band the vector path must
 * peel to scalar), stuck sentinels, sub-vector tails, diverged
 * write clocks, and intended words that match everywhere, mismatch
 * in one cell, or are simply random. Scalar and AVX2 dispatch must
 * both equal the oracle bit for bit.
 */
TEST(SimdOracle, LazyEligibilityMatchesModelOnAdversarialPlanes)
{
    SimdSwitch restore;
    const DeviceConfig config;
    const CellModel model(config);
    for (const std::size_t cells : kCellCounts) {
        for (const double stuckFraction : {0.0, 0.02}) {
            CellStorage store;
            CellStorage::Geometry g;
            g.lines = 6;
            g.cellsPerLine = cells;
            g.intendedWordsPerLine = (2 * cells + 63) / 64;
            g.auxPlanes = false;
            g.manufSeed = 13;
            store.configure(g);
            store.ensureSpec(config);
            Random rng(cells * 31 +
                       static_cast<std::uint64_t>(stuckFraction *
                                                  1000));
            randomizePlanes(store, rng, stuckFraction);

            kernels::DriftCrossLut lut;
            lut.init(config, store.spec());

            const std::size_t bits = 2 * cells - 1; // Odd width.
            for (std::size_t line = 0; line < g.lines; ++line) {
                // Write clocks per line, far enough apart to land
                // crossings on both sides of each tick.
                const Tick writeTick =
                    secondsToTicks(1.0 + 3600.0 * line);
                store.setLineMeta(line, writeTick, 1 + line);
                // Line 2 diverges a few cells onto older clocks
                // (the scalar-fallback shape differential writes
                // leave behind).
                if (line == 2) {
                    for (std::size_t i = 0; i < cells; i += 3) {
                        store.setWriteTick(
                            line * store.cellsPerLine() + i,
                            writeTick / 2);
                    }
                }
                // Intended words: lines 0-2 match every live cell's
                // write-time read (the deep path), line 3
                // mismatches exactly one cell, the rest keep the
                // all-zero plane (mismatch at the first non-zero
                // read).
                if (line <= 3) {
                    std::vector<std::uint64_t> words(
                        g.intendedWordsPerLine, 0);
                    for (std::size_t i = 0; i < cells; ++i) {
                        const Cell cell = store.loadPhysics(
                            line * store.cellsPerLine() + i);
                        std::uint64_t sym = levelToGray(
                            static_cast<std::uint8_t>(
                                model.read(cell, writeTick)));
                        if (line == 3 && i == cells / 2)
                            sym ^= 1u;
                        words[(2 * i) >> 6] |= sym
                            << ((2 * i) & 63u);
                    }
                    store.setIntended(
                        line, BitVector::fromWords(bits, words));
                }

                SCOPED_TRACE("cells " + std::to_string(cells) +
                             " line " + std::to_string(line) +
                             " stuck " +
                             std::to_string(stuckFraction));
                const kernels::LazyLineResult want =
                    lazyOracle(store, model, line, cells);
                const CellConstSpan span =
                    store.constSpan(line, cells);
                simd::setEnabled(false);
                const kernels::LazyLineResult scalar =
                    kernels::computeLazyLine(
                        span, store.intendedWords(line), writeTick,
                        config, lut);
                simd::setEnabled(true);
                const kernels::LazyLineResult vector =
                    kernels::computeLazyLine(
                        span, store.intendedWords(line), writeTick,
                        config, lut);
                EXPECT_EQ(scalar.eligible, want.eligible);
                EXPECT_EQ(scalar.cleanUntil, want.cleanUntil);
                EXPECT_EQ(vector.eligible, want.eligible);
                EXPECT_EQ(vector.cleanUntil, want.cleanUntil);
            }
        }
    }
}

/**
 * Encode random payloads, inject 0..t+2 random bit errors, and
 * decode with each path: status, corrected-bit count, and the final
 * codeword must match bit for bit — including Uncorrectable
 * verdicts, which exercise the Chien root-count contract.
 */
TEST(SimdOracle, BchDecodeMatchesScalarAcrossErrorCounts)
{
    SimdSwitch restore;
    struct Shape
    {
        std::size_t dataBits;
        unsigned t;
    };
    // t = 3 keeps terms < 8 (vector syndrome declines, Chien still
    // vectorizes); t = 8 and 16 hit the 2- and 4-register syndrome
    // accumulators; 171 bits gives an odd codeword width.
    const Shape shapes[] = {{64, 4}, {171, 3}, {512, 8}, {512, 16}};
    for (const Shape &shape : shapes) {
        const BchCode code(shape.dataBits, shape.t);
        Random rng(shape.dataBits * 31 + shape.t);
        for (unsigned errors = 0; errors <= shape.t + 2; ++errors) {
            for (unsigned trial = 0; trial < 8; ++trial) {
                BitVector data(shape.dataBits);
                data.randomize(rng);
                const BitVector clean = code.encode(data);
                BitVector corrupted = clean;
                for (unsigned e = 0; e < errors; ++e)
                    corrupted.flip(rng.uniformInt(corrupted.size()));

                BitVector scalarWord = corrupted;
                BitVector vectorWord = corrupted;
                simd::setEnabled(false);
                const DecodeResult scalar = code.decode(scalarWord);
                const bool scalarCheck = code.check(corrupted);
                simd::setEnabled(true);
                const DecodeResult vector = code.decode(vectorWord);

                SCOPED_TRACE("t " + std::to_string(shape.t) +
                             " errors " + std::to_string(errors) +
                             " trial " + std::to_string(trial));
                EXPECT_EQ(scalar.status, vector.status);
                EXPECT_EQ(scalar.correctedBits, vector.correctedBits);
                EXPECT_EQ(scalarWord.countDifferences(vectorWord), 0u);
                EXPECT_EQ(scalarCheck, code.check(corrupted));
            }
        }
    }
}

TEST(SimdOracle, ChienScanHandlesSubVectorTailAndEarlyExit)
{
    if (!bchsimd::available())
        GTEST_SKIP() << "AVX2 unavailable; dispatch test covers this";
    // A tiny field (m = 4, order 15) forces the vector scan into its
    // scalar tail after one 8-lane step; random locator terms probe
    // it against the reference loop.
    const BchCode code(11, 1); // GF(2^4).
    Random rng(9);
    for (unsigned trial = 0; trial < 200; ++trial) {
        BitVector data(11);
        data.randomize(rng);
        BitVector word = code.encode(data);
        for (unsigned e = 0; e < trial % 4; ++e)
            word.flip(rng.uniformInt(word.size()));
        BitVector scalarWord = word;
        BitVector vectorWord = word;
        SimdSwitch restore;
        simd::setEnabled(false);
        const DecodeResult scalar = code.decode(scalarWord);
        simd::setEnabled(true);
        const DecodeResult vector = code.decode(vectorWord);
        EXPECT_EQ(scalar.status, vector.status);
        EXPECT_EQ(scalarWord.countDifferences(vectorWord), 0u);
    }
}

/**
 * Warm-program kernel vs its scalar transform loop: identical plane
 * bytes and identical draw consumption, for odd codeword widths
 * (half-cell tails), a device that freezes most cells at
 * manufacturing (the worn branch), and a zero drift-speed sigma
 * (the branch that skips the second manufacturing draw).
 */
TEST(SimdOracle, WarmProgramMatchesScalarOnAdversarialWidths)
{
    SimdSwitch restore;
    DeviceConfig configs[3];
    configs[1].enduranceMedian = 1.0; // lnE ~ 0: most cells freeze.
    configs[1].enduranceSigmaLn = 0.5;
    configs[2].driftSpeedSigmaLn = 0.0; // No per-cell speed draw.
    for (unsigned c = 0; c < 3; ++c) {
        const DeviceConfig &config = configs[c];
        for (const std::size_t cells : kCellCounts) {
            const std::size_t bits = 2 * cells - 1; // Odd width.
            BitVector word(bits);
            Random data(cells * 5 + c);
            word.randomize(data);
            CellStorage stores[2];
            Random rngs[2] = {Random(cells * 7 + 1),
                              Random(cells * 7 + 1)};
            for (int v = 0; v < 2; ++v) {
                CellStorage::Geometry g;
                g.lines = 3;
                g.cellsPerLine = cells;
                g.intendedWordsPerLine = (bits + 63) / 64;
                g.auxPlanes = false;
                g.manufSeed = 13;
                stores[v].configure(g);
                stores[v].ensureSpec(config);
                simd::setEnabled(v == 1);
                // Line 1: plane bases unaligned when cells is odd.
                kernels::warmProgramCodeword(stores[v].span(1, cells),
                                             word, bits, config,
                                             rngs[v]);
            }
            simd::setEnabled(true);
            SCOPED_TRACE("config " + std::to_string(c) + " cells " +
                         std::to_string(cells));
            const CellConstSpan a = stores[0].constSpan(1, cells);
            const CellConstSpan b = stores[1].constSpan(1, cells);
            for (std::size_t i = 0; i < cells; ++i) {
                EXPECT_EQ(a.logRq[i], b.logRq[i]) << "cell " << i;
                EXPECT_EQ(a.nuIdx[i], b.nuIdx[i]) << "cell " << i;
                EXPECT_EQ(a.grayAt(i), b.grayAt(i)) << "cell " << i;
            }
            // Same number of line-stream draws consumed.
            EXPECT_EQ(rngs[0].next(), rngs[1].next());
        }
    }
}

/**
 * Rewrite-program kernel (the batched two-stage pipeline behind
 * programCodeword) vs the per-cell scalar loop, on adversarial
 * random planes: stuck densities force the overlay + frozen-symbol
 * merge path, odd widths leave a half-cell tail, and a
 * two-writes-to-death endurance config exercises the worn-out
 * branch of the batched transform.
 */
TEST(SimdOracle, RewriteProgramMatchesScalarOnAdversarialPlanes)
{
    SimdSwitch restore;
    DeviceConfig configs[2];
    configs[1].enduranceMedian = 2.0; // Many cells die this write.
    configs[1].enduranceSigmaLn = 0.5;
    for (unsigned c = 0; c < 2; ++c) {
        const DeviceConfig &config = configs[c];
        const CellModel model(config);
        for (const std::size_t cells : kCellCounts) {
            for (const double stuckFraction : {0.0, 0.3}) {
                const std::size_t bits = 2 * cells - 1;
                BitVector word(bits);
                Random data(cells * 3 + c);
                word.randomize(data);
                CellStorage stores[2];
                LineProgramStats stats[2];
                Random rngs[2] = {Random(cells * 11 + 2),
                                  Random(cells * 11 + 2)};
                for (int v = 0; v < 2; ++v) {
                    CellStorage::Geometry g;
                    g.lines = 3;
                    g.cellsPerLine = cells;
                    g.intendedWordsPerLine = (bits + 63) / 64;
                    g.auxPlanes = false;
                    g.manufSeed = 13;
                    stores[v].configure(g);
                    stores[v].ensureSpec(config);
                    Random planes(cells * 31 +
                                  static_cast<std::uint64_t>(
                                      stuckFraction * 1000));
                    randomizePlanes(stores[v], planes, stuckFraction);
                    simd::setEnabled(v == 1);
                    stats[v] = kernels::programCodeword(
                        stores[v].span(1, cells), word, bits,
                        /*slc_mode=*/false, secondsToTicks(7200.0),
                        model, rngs[v], /*differential=*/false);
                }
                simd::setEnabled(true);
                SCOPED_TRACE("config " + std::to_string(c) +
                             " cells " + std::to_string(cells) +
                             " stuck " +
                             std::to_string(stuckFraction));
                EXPECT_EQ(stats[0].cellsProgrammed,
                          stats[1].cellsProgrammed);
                EXPECT_EQ(stats[0].totalIterations,
                          stats[1].totalIterations);
                EXPECT_EQ(stats[0].cellsWornOut,
                          stats[1].cellsWornOut);
                const CellConstSpan a = stores[0].constSpan(1, cells);
                const CellConstSpan b = stores[1].constSpan(1, cells);
                for (std::size_t i = 0; i < cells; ++i) {
                    EXPECT_EQ(a.logRq[i], b.logRq[i]) << "cell " << i;
                    EXPECT_EQ(a.nuIdx[i], b.nuIdx[i]) << "cell " << i;
                    EXPECT_EQ(a.grayAt(i), b.grayAt(i))
                        << "cell " << i;
                    EXPECT_EQ(a.writeTick(i), b.writeTick(i))
                        << "cell " << i;
                }
                EXPECT_EQ(rngs[0].next(), rngs[1].next());
            }
        }
    }
}

/**
 * Batched fault deposits vs a per-bit reference running the exact
 * same draw sequence on its own clone of the lane stream: the
 * word-level XOR masks of corruptSpan (including bursts straddling
 * 64-bit word boundaries and the cached-exponential Poisson
 * overload) must corrupt exactly the bits the historical per-flip
 * loop would have. Widths sit on and around word boundaries.
 */
TEST(SimdOracle, BatchedFaultDepositsMatchPerBitReference)
{
    FaultCampaignConfig campaign;
    campaign.disturbFlipsPerRead = 1.7;
    campaign.burstProbPerRead = 0.6;
    campaign.burstBits = 13;
    campaign.seed = 2026;
    FaultInjector injector(campaign);
    injector.shardStreams(4);
    const std::size_t widths[4] = {65, 70, 127, 131};
    std::uint64_t refFlips = 0;
    std::uint64_t refBursts = 0;
    for (std::size_t shard = 0; shard < 4; ++shard) {
        const std::size_t bits = widths[shard];
        Random ref = Random::stream(campaign.seed, shard);
        Random payload(shard * 97 + 1);
        BitVector word(bits);
        word.randomize(payload);
        BitVector mirror = word;
        for (int iter = 0; iter < 200; ++iter) {
            injector.corruptWord(word, shard);
            const std::uint64_t flips =
                ref.poisson(campaign.disturbFlipsPerRead);
            for (std::uint64_t f = 0; f < flips; ++f)
                mirror.flip(ref.uniformInt(mirror.size()));
            refFlips += flips;
            if (ref.bernoulli(campaign.burstProbPerRead)) {
                ++refBursts;
                const std::size_t len = campaign.burstBits;
                const std::size_t start =
                    ref.uniformInt(bits - len + 1);
                for (std::size_t i = 0; i < len; ++i)
                    mirror.flip(start + i);
                refFlips += len;
            }
            ASSERT_EQ(word, mirror)
                << "shard " << shard << " iter " << iter;
        }
    }
    EXPECT_EQ(injector.stats().transientFlips, refFlips);
    EXPECT_EQ(injector.stats().bursts, refBursts);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the UE degradation ladder: widened-margin retries, ECP
 * re-learn, spare-pool retirement, and SLC fallback — on both
 * backends, driven by deterministic fault campaigns.
 */

#include <gtest/gtest.h>

#include "faults/fault_injector.hh"
#include "scrub/analytic_backend.hh"
#include "scrub/cell_backend.hh"
#include "scrub/recording_backend.hh"

namespace pcmscrub {
namespace {

// ---------------------------------------------------------------
// Cell backend: burst campaign, ladder on vs off.
// ---------------------------------------------------------------

CellBackendConfig
burstConfig(bool ladder)
{
    CellBackendConfig config;
    config.lines = 32;
    config.scheme = EccScheme::bch(4);
    config.seed = 5;
    config.degradation.enabled = ladder;
    config.degradation.maxRetries = 2;
    return config;
}

FaultCampaignConfig
burstCampaign()
{
    FaultCampaignConfig campaign;
    campaign.burstProbPerRead = 0.3;
    campaign.burstBits = 12; // Defeats BCH t=4 outright.
    campaign.seed = 7;
    return campaign;
}

ScrubMetrics
runBurstCampaign(bool ladder)
{
    CellBackend backend(burstConfig(ladder));
    FaultInjector injector(burstCampaign());
    backend.setFaultInjector(&injector);
    for (unsigned pass = 1; pass <= 5; ++pass) {
        const Tick now = secondsToTicks(10.0 * pass);
        for (LineIndex line = 0; line < backend.lineCount(); ++line) {
            const FullDecodeOutcome outcome =
                backend.fullDecode(line, now);
            if (outcome.uncorrectable)
                backend.repairUncorrectable(line, now);
        }
    }
    return backend.metrics();
}

TEST(DegradationLadder, LadderLowersHostVisibleUEs)
{
    // The acceptance comparison: identical seeds, identical fault
    // campaign, the only difference is the ladder switch.
    const ScrubMetrics off = runBurstCampaign(false);
    const ScrubMetrics on = runBurstCampaign(true);

    EXPECT_GT(off.ueSurfaced, 10u);
    EXPECT_LT(on.ueSurfaced, off.ueSurfaced);
    EXPECT_GT(on.ueAbsorbed(), 0u);

    // Disabled means *disabled*: no ladder traffic at all.
    EXPECT_EQ(off.ueRetries, 0u);
    EXPECT_EQ(off.ueAbsorbed(), 0u);
}

TEST(DegradationLadder, RetryResolvesTransientBursts)
{
    // Bursts are transient (they corrupt the sensed word, not the
    // cells), so a widened-margin re-read recovers every one.
    CellBackendConfig config;
    config.lines = 8;
    config.scheme = EccScheme::bch(4);
    config.seed = 3;
    config.degradation.enabled = true;
    CellBackend backend(config);

    FaultCampaignConfig campaign;
    campaign.burstProbPerRead = 1.0; // Every read is corrupted.
    campaign.burstBits = 12;
    campaign.seed = 9;
    FaultInjector injector(campaign);
    backend.setFaultInjector(&injector);

    const Tick now = secondsToTicks(1.0);
    for (LineIndex line = 0; line < backend.lineCount(); ++line) {
        const FullDecodeOutcome outcome = backend.fullDecode(line, now);
        EXPECT_FALSE(outcome.uncorrectable);
        EXPECT_EQ(outcome.handledBy, DegradationStage::Retry);
        EXPECT_EQ(outcome.errors, 0u);
    }
    EXPECT_EQ(backend.metrics().ueRetryResolved, 8u);
    EXPECT_EQ(backend.metrics().ueSurfaced, 0u);
    // Ladder-internal refreshes are not scrub rewrites.
    EXPECT_EQ(backend.metrics().scrubRewrites, 0u);
}

// ---------------------------------------------------------------
// Cell backend: hard faults walking the full ladder.
// ---------------------------------------------------------------

TEST(DegradationLadder, EcpRepairRelearnsStuckCells)
{
    CellBackendConfig config;
    config.lines = 2;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 16;
    config.seed = 17;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 1;
    CellBackend backend(config);

    // Freeze more cells than the code can absorb. The warm-up write
    // predates the freeze, so the line's ECP entries know nothing
    // about them until the ladder's write-verify pass re-learns.
    FaultCampaignConfig campaign;
    campaign.seed = 23;
    FaultInjector freezer(campaign);
    freezer.freezeCells(backend.array().line(0), 8);

    const Tick now = secondsToTicks(1.0);
    const FullDecodeOutcome outcome = backend.fullDecode(0, now);
    EXPECT_FALSE(outcome.uncorrectable);
    EXPECT_EQ(outcome.handledBy, DegradationStage::EcpRepair);
    EXPECT_EQ(backend.metrics().ueEcpRepaired, 1u);
    EXPECT_GT(backend.ecpUsed(0), 0u);

    // The repaired line decodes cleanly from here on.
    EXPECT_EQ(backend.trueErrors(0, now + 1), 0u);
}

TEST(DegradationLadder, RetirementConsumesSparesThenFallsToSlc)
{
    CellBackendConfig config;
    config.lines = 4;
    config.scheme = EccScheme::bch(4);
    config.ecpEntries = 0; // No ECP: stage 2 is skipped.
    config.seed = 17;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 1;
    config.degradation.spareLines = 2;
    config.degradation.slcFallback = true;
    CellBackend backend(config);

    EXPECT_EQ(backend.sparePool().capacity(), 2u);
    EXPECT_EQ(backend.metrics().sparesRemaining, 2u);

    // Far more stuck cells than any stage below retirement can fix.
    FaultCampaignConfig campaign;
    campaign.seed = 23;
    FaultInjector freezer(campaign);
    for (LineIndex line = 0; line < backend.lineCount(); ++line)
        freezer.freezeCells(backend.array().line(line), 60);

    const Tick now = secondsToTicks(1.0);
    std::vector<DegradationStage> stages;
    for (LineIndex line = 0; line < backend.lineCount(); ++line)
        stages.push_back(backend.fullDecode(line, now).handledBy);

    // Two lines grab the two spares; the rest drop to SLC, which
    // cannot save them either (the cells themselves are dead).
    EXPECT_EQ(stages[0], DegradationStage::Retire);
    EXPECT_EQ(stages[1], DegradationStage::Retire);
    EXPECT_EQ(stages[2], DegradationStage::HostVisible);
    EXPECT_EQ(stages[3], DegradationStage::HostVisible);

    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.ueRetired, 2u);
    EXPECT_EQ(m.sparesRemaining, 0u);
    EXPECT_EQ(m.ueSlcFallbacks, 2u);
    EXPECT_EQ(m.ueSurfaced, 2u);
    EXPECT_EQ(m.ueRetries, 4u); // One bounded retry per line.

    const SparePool &pool = backend.sparePool();
    EXPECT_TRUE(pool.exhausted());
    EXPECT_EQ(pool.retiredCount(), 2u);
    EXPECT_TRUE(pool.isRetired(0));
    EXPECT_TRUE(pool.isRetired(1));
    EXPECT_FALSE(pool.isRetired(2));

    // Retirement and SLC fallback each cost one line of capacity.
    const std::uint64_t lineBits = backend.code().codewordBits();
    EXPECT_EQ(m.capacityLostBits, 4 * lineBits);

    // A retired line resolves to fresh silicon: clean from here on.
    EXPECT_EQ(backend.trueErrors(0, now + 1), 0u);
}

// ---------------------------------------------------------------
// Analytic backend mirrors the same ladder.
// ---------------------------------------------------------------

AnalyticConfig
analyticConfig(bool ladder)
{
    AnalyticConfig config;
    config.lines = 256;
    config.scheme = EccScheme::secdedX8();
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 11;
    config.degradation.enabled = ladder;
    return config;
}

ScrubMetrics
runAnalyticCampaign(bool ladder)
{
    AnalyticBackend backend(analyticConfig(ladder));
    FaultCampaignConfig campaign;
    campaign.disturbFlipsPerRead = 3.0;
    campaign.seed = 19;
    FaultInjector injector(campaign);
    backend.setFaultInjector(&injector);
    for (unsigned pass = 1; pass <= 4; ++pass) {
        const Tick now = secondsToTicks(100.0 * pass);
        for (LineIndex line = 0; line < backend.lineCount(); ++line) {
            const FullDecodeOutcome outcome =
                backend.fullDecode(line, now);
            if (outcome.uncorrectable)
                backend.repairUncorrectable(line, now);
        }
    }
    return backend.metrics();
}

TEST(DegradationLadder, AnalyticLadderLowersHostVisibleUEs)
{
    const ScrubMetrics off = runAnalyticCampaign(false);
    const ScrubMetrics on = runAnalyticCampaign(true);

    EXPECT_GT(off.ueSurfaced, 10u);
    EXPECT_LT(on.ueSurfaced, off.ueSurfaced);
    EXPECT_GT(on.ueAbsorbed(), 0u);
    EXPECT_EQ(off.ueRetries, 0u);
}

TEST(DegradationLadder, AnalyticRetirementTracksSparesAndCapacity)
{
    AnalyticConfig config;
    config.lines = 64;
    config.scheme = EccScheme::secdedX8();
    config.demand.writesPerLinePerSecond = 0.5;
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 29;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 1;
    config.degradation.retryResolveProb = 0.0;
    config.degradation.ecpRepair = false;
    config.degradation.spareLines = 4;
    config.degradation.slcFallback = true;
    AnalyticBackend backend(config);

    // Heavy stuck-at injection riding the demand write traffic.
    FaultCampaignConfig campaign;
    campaign.stuckPerWrite = 10.0;
    campaign.seed = 31;
    FaultInjector injector(campaign);
    backend.setFaultInjector(&injector);

    for (unsigned pass = 1; pass <= 6; ++pass) {
        const Tick now = secondsToTicks(100.0 * pass);
        for (LineIndex line = 0; line < backend.lineCount(); ++line) {
            const FullDecodeOutcome outcome =
                backend.fullDecode(line, now);
            if (outcome.uncorrectable)
                backend.repairUncorrectable(line, now);
        }
    }

    const ScrubMetrics &m = backend.metrics();
    EXPECT_EQ(m.ueRetired, 4u);
    EXPECT_EQ(m.sparesRemaining, 0u);
    EXPECT_TRUE(backend.sparePool().exhausted());
    EXPECT_GT(m.ueSlcFallbacks, 0u);

    const std::uint64_t lineBits =
        static_cast<std::uint64_t>(backend.cellsPerLine()) *
        bitsPerCell;
    EXPECT_EQ(m.capacityLostBits,
              (m.ueRetired + m.ueSlcFallbacks) * lineBits);
}

// ---------------------------------------------------------------
// The recorder surfaces ladder traffic for the bank simulation.
// ---------------------------------------------------------------

TEST(DegradationLadder, RecorderEmitsRetryReadsAndLadderRewrites)
{
    CellBackendConfig config;
    config.lines = 8;
    config.scheme = EccScheme::bch(4);
    config.seed = 3;
    config.degradation.enabled = true;
    config.degradation.maxRetries = 2;
    CellBackend inner(config);
    RecordingBackend recorder(inner);

    FaultCampaignConfig campaign;
    campaign.burstProbPerRead = 1.0;
    campaign.burstBits = 12;
    campaign.seed = 9;
    FaultInjector injector(campaign);
    recorder.setFaultInjector(&injector);

    const Tick now = secondsToTicks(1.0);
    for (LineIndex line = 0; line < recorder.lineCount(); ++line)
        recorder.fullDecode(line, now);

    // Every burst cost one retry (resolved first attempt) and one
    // ladder-internal refresh write.
    const Trace &trace = recorder.trace();
    EXPECT_EQ(trace.countOf(ReqType::RetryRead),
              inner.metrics().ueRetries);
    EXPECT_GT(trace.countOf(ReqType::RetryRead), 0u);
    EXPECT_EQ(trace.countOf(ReqType::ScrubRewrite),
              inner.metrics().ueAbsorbed());
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the cell-accurate backend with real codecs.
 */

#include <gtest/gtest.h>

#include "scrub/cell_backend.hh"

namespace pcmscrub {
namespace {

CellBackendConfig
smallConfig(EccScheme scheme = EccScheme::bch(4))
{
    CellBackendConfig config;
    config.lines = 64;
    config.scheme = scheme;
    config.seed = 3;
    return config;
}

TEST(CellBackend, GeometryMatchesCodec)
{
    const CellBackend bch(smallConfig(EccScheme::bch(8)));
    EXPECT_EQ(bch.lineCount(), 64u);
    EXPECT_EQ(bch.code().codewordBits(), 592u);
    EXPECT_EQ(bch.cellsPerLine(), 296u);
    const CellBackend secded(smallConfig(EccScheme::secdedX8()));
    EXPECT_EQ(secded.code().codewordBits(), 576u);
}

TEST(CellBackend, FreshLinesPassAllChecks)
{
    CellBackend backend(smallConfig());
    const Tick at = secondsToTicks(0.5);
    for (LineIndex line = 0; line < backend.lineCount(); ++line) {
        EXPECT_TRUE(backend.eccCheckClean(line, at));
        EXPECT_TRUE(backend.lightDetectClean(line, at));
        EXPECT_EQ(backend.trueErrors(line, at), 0u);
        const FullDecodeOutcome outcome = backend.fullDecode(line, at);
        EXPECT_FALSE(outcome.uncorrectable);
        EXPECT_EQ(outcome.errors, 0u);
    }
}

TEST(CellBackend, AgedLinesDevelopErrorsDecoderFinds)
{
    CellBackendConfig config = smallConfig(EccScheme::bch(8));
    config.lines = 256;
    CellBackend backend(config);
    const Tick month = secondsToTicks(2.6e6);
    std::uint64_t trueTotal = 0;
    std::uint64_t decodedTotal = 0;
    std::uint64_t ue = 0;
    for (LineIndex line = 0; line < backend.lineCount(); ++line) {
        trueTotal += backend.trueErrors(line, month);
        const FullDecodeOutcome outcome =
            backend.fullDecode(line, month);
        if (outcome.uncorrectable) {
            ++ue;
            backend.repairUncorrectable(line, month);
        } else {
            decodedTotal += outcome.errors;
        }
    }
    ASSERT_GT(trueTotal, 0u);
    // Correctable lines: decoder reports exactly the true counts.
    EXPECT_EQ(backend.metrics().scrubUncorrectable, ue);
    EXPECT_GT(decodedTotal, 0u);
}

TEST(CellBackend, ScrubRewriteRestoresCleanliness)
{
    CellBackendConfig config = smallConfig(EccScheme::bch(8));
    config.lines = 128;
    CellBackend backend(config);
    const Tick month = secondsToTicks(2.6e6);
    std::uint64_t dirty = 0;
    for (LineIndex line = 0; line < backend.lineCount(); ++line) {
        if (backend.trueErrors(line, month) > 0) {
            ++dirty;
            backend.scrubRewrite(line, month);
            EXPECT_EQ(backend.trueErrors(line, month), 0u);
        }
    }
    ASSERT_GT(dirty, 0u);
    EXPECT_EQ(backend.metrics().scrubRewrites, dirty);
    EXPECT_GT(backend.metrics().correctedErrors, 0u);
}

TEST(CellBackend, DetectorAgreesWithGroundTruth)
{
    CellBackendConfig config = smallConfig(EccScheme::bch(8));
    config.lines = 256;
    config.detectorParity = 16;
    CellBackend backend(config);
    const Tick at = secondsToTicks(5e5);
    for (LineIndex line = 0; line < backend.lineCount(); ++line) {
        const bool looksClean = backend.lightDetectClean(line, at);
        const unsigned errors = backend.trueErrors(line, at);
        if (errors == 0) {
            EXPECT_TRUE(looksClean) << "line " << line;
        }
        // Dirty lines may rarely alias; the counter tracks those.
    }
    EXPECT_LE(backend.metrics().detectorMisses, 10u);
}

TEST(CellBackend, DemandWriteRefreshesAndRerandomises)
{
    CellBackend backend(smallConfig());
    const Tick month = secondsToTicks(2.6e6);
    const unsigned before = backend.trueErrors(5, month);
    backend.demandWrite(5, month);
    EXPECT_EQ(backend.trueErrors(5, month), 0u);
    (void)before;
    EXPECT_EQ(backend.metrics().demandWrites, 1u);
    // Detect word was refreshed along with the data.
    EXPECT_TRUE(backend.lightDetectClean(5, month + 1));
}

TEST(CellBackend, RepairRemapsStuckCells)
{
    CellBackendConfig config = smallConfig();
    config.device.enduranceMedian = 5.0; // Cells die almost at once.
    config.device.enduranceSigmaLn = 0.2;
    CellBackend backend(config);
    const LineIndex victim = 0;
    Tick now = secondsToTicks(1.0);
    for (int i = 0; i < 20; ++i) {
        backend.demandWrite(victim, now);
        now += secondsToTicks(1.0);
    }
    ASSERT_GT(backend.metrics().cellsWornOut, 0u);
    // Some stuck cells likely conflict now; repair must clear them.
    backend.repairUncorrectable(victim, now);
    EXPECT_EQ(backend.trueErrors(victim, now), 0u);
}

TEST(CellBackend, EnergyChargedOncePerVisit)
{
    CellBackend backend(smallConfig());
    const Tick at = secondsToTicks(10.0);
    backend.lightDetectClean(0, at);
    const double once =
        backend.metrics().energy.get(EnergyCategory::ArrayRead);
    backend.fullDecode(0, at);
    EXPECT_DOUBLE_EQ(
        backend.metrics().energy.get(EnergyCategory::ArrayRead), once);
    backend.fullDecode(0, at + 5);
    EXPECT_GT(backend.metrics().energy.get(EnergyCategory::ArrayRead),
              once);
}

TEST(CellBackend, ReprogramInvalidatesVisitReadCharge)
{
    // Regression: the (line, tick) read-charge dedup must not
    // survive a reprogram — re-reading a just-rewritten line at the
    // same tick is a fresh sensing pass and costs a fresh array read.
    CellBackend backend(smallConfig());
    const Tick at = secondsToTicks(10.0);
    backend.lightDetectClean(0, at);
    const double once =
        backend.metrics().energy.get(EnergyCategory::ArrayRead);
    ASSERT_GT(once, 0.0);
    backend.scrubRewrite(0, at);
    backend.lightDetectClean(0, at);
    EXPECT_DOUBLE_EQ(
        backend.metrics().energy.get(EnergyCategory::ArrayRead),
        once + once);
}

TEST(CellBackend, MidVisitReprogramRefreshesSensedWord)
{
    // A demand write replaces the payload mid-visit; the gates at the
    // same tick must sense the new word, not a stale visit buffer.
    CellBackend backend(smallConfig());
    const Tick at = secondsToTicks(10.0);
    EXPECT_TRUE(backend.lightDetectClean(3, at));
    backend.demandWrite(3, at);
    EXPECT_TRUE(backend.lightDetectClean(3, at));
    EXPECT_TRUE(backend.eccCheckClean(3, at));
    EXPECT_EQ(backend.trueErrors(3, at), 0u);
}

TEST(CellBackend, LazyDriftOffMatchesOnForCleanVisits)
{
    CellBackendConfig config = smallConfig(EccScheme::bch(8));
    CellBackendConfig exact = config;
    exact.lazyDrift = false;
    CellBackend lazy(config);
    CellBackend slow(exact);
    for (const double seconds : {0.5, 3600.0, 2.6e6}) {
        const Tick at = secondsToTicks(seconds);
        for (LineIndex line = 0; line < lazy.lineCount(); ++line) {
            EXPECT_EQ(lazy.lightDetectClean(line, at),
                      slow.lightDetectClean(line, at))
                << "line " << line << " at " << seconds << " s";
        }
    }
    EXPECT_EQ(lazy.metrics().lightDetects,
              slow.metrics().lightDetects);
    EXPECT_EQ(lazy.metrics().detectorMisses,
              slow.metrics().detectorMisses);
    EXPECT_DOUBLE_EQ(lazy.metrics().energy.total(),
                     slow.metrics().energy.total());
}

TEST(CellBackend, MarginScanSeesPreFailurePopulation)
{
    CellBackendConfig config = smallConfig(EccScheme::bch(8));
    config.lines = 128;
    CellBackend backend(config);
    const Tick at = secondsToTicks(3600.0);
    std::uint64_t flagged = 0;
    for (LineIndex line = 0; line < backend.lineCount(); ++line)
        flagged += backend.marginScan(line, at);
    EXPECT_GT(flagged, 0u);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Unit tests for the drift calendar: bucket arithmetic, the O(1)
 * occupancy-bitmask horizon, ineligible accounting, and the
 * allCleanAt memo surviving updates that cannot change its verdict.
 * The memo behaviour matters for sweep cost — a mid-sweep rewrite on
 * a not-all-clean shard must not force a recomputation on every
 * later visit at the same tick — so the tests pin the exact
 * invalidation contract, not just eventual correctness.
 */

#include <gtest/gtest.h>

#include "scrub/drift_calendar.hh"

namespace pcmscrub {
namespace {

LazyLineState
eligibleAt(Tick tick)
{
    LazyLineState state;
    state.eligible = true;
    state.cleanUntil = tick;
    return state;
}

LazyLineState
ineligible()
{
    LazyLineState state;
    state.eligible = false;
    return state;
}

TEST(DriftCalendar, BucketArithmetic)
{
    EXPECT_EQ(DriftCalendar::bucketOf(0), 0u);
    EXPECT_EQ(DriftCalendar::bucketOf(1), 1u);
    EXPECT_EQ(DriftCalendar::bucketOf(2), 2u);
    EXPECT_EQ(DriftCalendar::bucketOf(3), 2u);
    EXPECT_EQ(DriftCalendar::bucketOf(kNeverTick), 64u);
    EXPECT_EQ(DriftCalendar::bucketFloor(0), 0u);
    EXPECT_EQ(DriftCalendar::bucketFloor(1), 1u);
    EXPECT_EQ(DriftCalendar::bucketFloor(2), 2u);
    EXPECT_EQ(DriftCalendar::bucketFloor(64),
              Tick{1} << 63);
    // Every tick lands in a bucket whose floor lower-bounds it.
    for (Tick t : {Tick{5}, Tick{1000}, Tick{1} << 40, kNeverTick})
        EXPECT_LE(DriftCalendar::bucketFloor(DriftCalendar::bucketOf(t)),
                  t);
}

TEST(DriftCalendar, HorizonTracksEarliestOccupiedBucket)
{
    DriftCalendar cal;
    cal.reset(1);
    EXPECT_EQ(cal.horizon(), kNeverTick);

    cal.add(eligibleAt(Tick{1} << 40));
    EXPECT_EQ(cal.horizon(), Tick{1} << 40);

    cal.add(eligibleAt(Tick{1000}));
    EXPECT_EQ(cal.horizon(), DriftCalendar::bucketFloor(
                                 DriftCalendar::bucketOf(1000)));

    // Removing the earlier entry moves the horizon back out.
    cal.remove(eligibleAt(Tick{1000}));
    EXPECT_EQ(cal.horizon(), Tick{1} << 40);

    cal.remove(eligibleAt(Tick{1} << 40));
    EXPECT_EQ(cal.horizon(), kNeverTick);

    // The top bucket (kNever entries) lives in the second mask word.
    cal.add(eligibleAt(kNeverTick));
    EXPECT_EQ(cal.horizon(), Tick{1} << 63);
}

TEST(DriftCalendar, HorizonSurvivesDuplicateTicks)
{
    DriftCalendar cal;
    cal.reset(1);
    cal.add(eligibleAt(Tick{700}));
    cal.add(eligibleAt(Tick{700}));
    cal.remove(eligibleAt(Tick{700}));
    // One entry remains: the bucket must still read as occupied.
    EXPECT_EQ(cal.horizon(), DriftCalendar::bucketFloor(
                                 DriftCalendar::bucketOf(700)));
    cal.remove(eligibleAt(Tick{700}));
    EXPECT_EQ(cal.horizon(), kNeverTick);
}

TEST(DriftCalendar, AllCleanAtVerdicts)
{
    DriftCalendar cal;
    cal.reset(3);
    EXPECT_TRUE(cal.validFor(3));
    EXPECT_FALSE(cal.validFor(4));

    // Empty calendar: trivially all clean at any tick.
    EXPECT_TRUE(cal.allCleanAt(Tick{1} << 50));

    cal.add(eligibleAt(Tick{1} << 20));
    EXPECT_TRUE(cal.allCleanAt(Tick{1} << 19));
    EXPECT_FALSE(cal.allCleanAt(Tick{1} << 30));

    // One ineligible line poisons the shortcut at every tick.
    cal.add(ineligible());
    EXPECT_EQ(cal.ineligibleLines(), 1u);
    EXPECT_FALSE(cal.allCleanAt(Tick{1}));
    cal.remove(ineligible());
    EXPECT_TRUE(cal.allCleanAt(Tick{1}));
}

TEST(DriftCalendar, MemoSurvivesVerdictPreservingUpdates)
{
    DriftCalendar cal;
    cal.reset(1);
    const Tick now = Tick{1} << 20;

    // Not-all-clean verdict cached...
    cal.add(ineligible());
    EXPECT_FALSE(cal.allCleanAt(now));
    // ...then a mid-sweep rewrite adds an eligible entry: the verdict
    // cannot flip (still ineligible), and the cached answer must stay
    // correct on the next visit at the same tick.
    cal.add(eligibleAt(Tick{1} << 40));
    EXPECT_FALSE(cal.allCleanAt(now));

    // Removing the blocker may flip the verdict: the memo must not
    // serve the stale negative.
    cal.remove(ineligible());
    EXPECT_TRUE(cal.allCleanAt(now));

    // All-clean verdict cached, then a later-horizon entry arrives:
    // still all clean at `now`.
    cal.add(eligibleAt(Tick{1} << 50));
    EXPECT_TRUE(cal.allCleanAt(now));

    // An earlier-horizon entry must invalidate the cached positive.
    cal.add(eligibleAt(Tick{16}));
    EXPECT_FALSE(cal.allCleanAt(now));

    // And removing it must restore the positive verdict.
    cal.remove(eligibleAt(Tick{16}));
    EXPECT_TRUE(cal.allCleanAt(now));
}

TEST(DriftCalendar, ResetStampsEpochAndClears)
{
    DriftCalendar cal;
    cal.reset(7);
    cal.add(eligibleAt(Tick{42}));
    cal.add(ineligible());
    cal.reset(8);
    EXPECT_TRUE(cal.validFor(8));
    EXPECT_EQ(cal.ineligibleLines(), 0u);
    EXPECT_EQ(cal.horizon(), kNeverTick);
    EXPECT_TRUE(cal.allCleanAt(kNeverTick - 1));
}

} // namespace
} // namespace pcmscrub

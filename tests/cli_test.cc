/**
 * @file
 * The shared CLI parser: well-formed flags parse, and every
 * malformed value — zero, negative, non-numeric, overflowing, or
 * missing — dies with a clear fatal() instead of wrapping, clamping,
 * or silently falling back to a default.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/cli.hh"
#include "common/simd.hh"
#include "common/thread_pool.hh"

namespace pcmscrub {
namespace {

/** Build a mutable argv from string literals. */
class Argv
{
  public:
    explicit Argv(std::initializer_list<const char *> args)
    {
        storage_.emplace_back("prog");
        for (const char *arg : args)
            storage_.emplace_back(arg);
        for (std::string &arg : storage_)
            pointers_.push_back(arg.data());
    }

    int argc() const { return static_cast<int>(pointers_.size()); }
    char **argv() { return pointers_.data(); }

  private:
    std::vector<std::string> storage_;
    std::vector<char *> pointers_;
};

CliOptions
parse(std::initializer_list<const char *> args)
{
    Argv argv(args);
    const CliOptions opts = parseCliOptions(argv.argc(), argv.argv(), 1);
    // parseCliOptions resizes the global pool; restore serial so
    // other tests see the default.
    ThreadPool::global().resize(1);
    return opts;
}

TEST(CliTest, DefaultsWhenNoFlags)
{
    const CliOptions opts = parse({});
    EXPECT_EQ(opts.seed, 1u);
    EXPECT_EQ(opts.threads, 1u);
    // 0 = "not set": each harness substitutes its own default scale.
    EXPECT_EQ(opts.lines, 0u);
    EXPECT_EQ(opts.sweeps, 0u);
    EXPECT_EQ(opts.checkpointEverySimHours, 0.0);
    EXPECT_TRUE(opts.checkpointPath.empty());
    EXPECT_TRUE(opts.resumePath.empty());
    EXPECT_FALSE(opts.checkpointingRequested());
}

TEST(CliTest, ParsesDevicesAndChaos)
{
    const CliOptions defaults = parse({});
    EXPECT_EQ(defaults.devices, 0u); // 0 = harness default.
    EXPECT_FALSE(defaults.chaos);

    const CliOptions opts = parse({"--devices", "32", "--chaos"});
    EXPECT_EQ(opts.devices, 32u);
    EXPECT_TRUE(opts.chaos);
    const CliOptions eq = parse({"--devices=8"});
    EXPECT_EQ(eq.devices, 8u);
    EXPECT_FALSE(eq.chaos);
}

TEST(CliDeathTest, DevicesRejectsZeroAndGarbage)
{
    EXPECT_EXIT(parse({"--devices", "0"}),
                ::testing::ExitedWithCode(1), "--devices");
    EXPECT_EXIT(parse({"--devices", "many"}),
                ::testing::ExitedWithCode(1), "--devices");
}

TEST(CliTest, ParsesLinesAndSweeps)
{
    const CliOptions opts =
        parse({"--lines", "65536", "--sweeps", "12"});
    EXPECT_EQ(opts.lines, 65536u);
    EXPECT_EQ(opts.sweeps, 12u);
    const CliOptions eq = parse({"--lines=2048", "--sweeps=96"});
    EXPECT_EQ(eq.lines, 2048u);
    EXPECT_EQ(eq.sweeps, 96u);
}

TEST(CliTest, ParsesWellFormedFlags)
{
    const CliOptions opts = parse({"--seed", "42", "--threads", "4",
                                   "--checkpoint", "/tmp/x.snap",
                                   "--checkpoint-every", "2.5",
                                   "--resume", "/tmp/y.snap"});
    EXPECT_EQ(opts.seed, 42u);
    EXPECT_EQ(opts.threads, 4u);
    EXPECT_EQ(opts.checkpointPath, "/tmp/x.snap");
    EXPECT_EQ(opts.checkpointEverySimHours, 2.5);
    EXPECT_EQ(opts.resumePath, "/tmp/y.snap");
    EXPECT_TRUE(opts.checkpointingRequested());
}

TEST(CliTest, ParsesEqualsSyntax)
{
    const CliOptions opts =
        parse({"--seed=7", "--checkpoint=run.snap",
               "--checkpoint-every=1"});
    EXPECT_EQ(opts.seed, 7u);
    EXPECT_EQ(opts.checkpointPath, "run.snap");
    EXPECT_EQ(opts.checkpointEverySimHours, 1.0);
}

TEST(CliTest, PositionalArgumentIsReturnedNotParsed)
{
    // The returned pointer aliases argv, so the vector must outlive
    // the assertions.
    Argv argv({"30", "--seed", "9"});
    const char *positional = nullptr;
    const CliOptions opts =
        parseCliOptions(argv.argc(), argv.argv(), 1, &positional);
    ThreadPool::global().resize(1);
    ASSERT_NE(positional, nullptr);
    EXPECT_STREQ(positional, "30");
    EXPECT_EQ(opts.seed, 9u);
}

// Malformed --seed -----------------------------------------------

TEST(CliDeathTest, SeedRejectsNegative)
{
    // strtoull would happily wrap "-5" to 2^64-5; the parser must
    // not.
    EXPECT_EXIT(parse({"--seed", "-5"}),
                ::testing::ExitedWithCode(1), "--seed");
}

TEST(CliDeathTest, SeedRejectsNonNumeric)
{
    EXPECT_EXIT(parse({"--seed", "banana"}),
                ::testing::ExitedWithCode(1), "--seed");
    EXPECT_EXIT(parse({"--seed", "12x"}),
                ::testing::ExitedWithCode(1), "--seed");
    EXPECT_EXIT(parse({"--seed", " 12"}),
                ::testing::ExitedWithCode(1), "--seed");
}

TEST(CliDeathTest, SeedRejectsOverflow)
{
    // 2^64 + change: out of uint64_t range.
    EXPECT_EXIT(parse({"--seed", "99999999999999999999"}),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(CliDeathTest, SeedRejectsEmptyAndMissingValue)
{
    EXPECT_EXIT(parse({"--seed", ""}),
                ::testing::ExitedWithCode(1), "empty value");
    EXPECT_EXIT(parse({"--seed"}),
                ::testing::ExitedWithCode(1), "requires a value");
}

// Malformed --threads --------------------------------------------

TEST(CliDeathTest, ThreadsRejectsZero)
{
    EXPECT_EXIT(parse({"--threads", "0"}),
                ::testing::ExitedWithCode(1), "--threads");
}

TEST(CliDeathTest, ThreadsRejectsNegative)
{
    EXPECT_EXIT(parse({"--threads", "-1"}),
                ::testing::ExitedWithCode(1), "--threads");
}

TEST(CliDeathTest, ThreadsRejectsNonNumericAndOverflow)
{
    EXPECT_EXIT(parse({"--threads", "many"}),
                ::testing::ExitedWithCode(1), "--threads");
    EXPECT_EXIT(parse({"--threads", "4096"}),
                ::testing::ExitedWithCode(1), "--threads");
    EXPECT_EXIT(parse({"--threads", "99999999999999999999"}),
                ::testing::ExitedWithCode(1), "--threads");
}

// Malformed --lines / --sweeps -----------------------------------

TEST(CliDeathTest, LinesRejectsZeroAndGarbage)
{
    EXPECT_EXIT(parse({"--lines", "0"}),
                ::testing::ExitedWithCode(1), "--lines");
    EXPECT_EXIT(parse({"--lines", "-4"}),
                ::testing::ExitedWithCode(1), "--lines");
    EXPECT_EXIT(parse({"--lines", "lots"}),
                ::testing::ExitedWithCode(1), "--lines");
}

TEST(CliDeathTest, SweepsRejectsZeroAndGarbage)
{
    EXPECT_EXIT(parse({"--sweeps", "0"}),
                ::testing::ExitedWithCode(1), "--sweeps");
    EXPECT_EXIT(parse({"--sweeps", "8x"}),
                ::testing::ExitedWithCode(1), "--sweeps");
    EXPECT_EXIT(parse({"--sweeps"}),
                ::testing::ExitedWithCode(1), "requires a value");
}

// Malformed --checkpoint-every -----------------------------------

TEST(CliDeathTest, CheckpointEveryRejectsZeroAndNegative)
{
    EXPECT_EXIT(parse({"--checkpoint", "x", "--checkpoint-every", "0"}),
                ::testing::ExitedWithCode(1), "must be positive");
    EXPECT_EXIT(
        parse({"--checkpoint", "x", "--checkpoint-every", "-2"}),
        ::testing::ExitedWithCode(1), "must be positive");
}

TEST(CliDeathTest, CheckpointEveryRejectsNonNumericAndOverflow)
{
    EXPECT_EXIT(
        parse({"--checkpoint", "x", "--checkpoint-every", "hourly"}),
        ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(
        parse({"--checkpoint", "x", "--checkpoint-every", "1h"}),
        ::testing::ExitedWithCode(1), "not a number");
    EXPECT_EXIT(
        parse({"--checkpoint", "x", "--checkpoint-every", "1e999"}),
        ::testing::ExitedWithCode(1), "out of range");
}

TEST(CliDeathTest, CheckpointEveryRequiresCheckpointPath)
{
    EXPECT_EXIT(parse({"--checkpoint-every", "1"}),
                ::testing::ExitedWithCode(1),
                "requires --checkpoint");
}

TEST(CliDeathTest, EmptyPathsRejected)
{
    EXPECT_EXIT(parse({"--checkpoint", ""}),
                ::testing::ExitedWithCode(1), "empty path");
    EXPECT_EXIT(parse({"--resume", ""}),
                ::testing::ExitedWithCode(1), "empty path");
    EXPECT_EXIT(parse({"--telemetry", ""}),
                ::testing::ExitedWithCode(1), "empty path");
}

TEST(CliTest, NoSimdFlagDisablesVectorDispatch)
{
    // Default: vector kernels stay eligible.
    EXPECT_FALSE(parse({}).noSimd);
    EXPECT_TRUE(simd::enabled());
    const CliOptions opts = parse({"--no-simd"});
    EXPECT_TRUE(opts.noSimd);
    // The parser applies the switch globally, forcing every kernel
    // onto the scalar reference path.
    EXPECT_FALSE(simd::enabled());
    simd::setEnabled(true); // Restore for other tests.
}

TEST(CliTest, ParsesTelemetryPath)
{
    EXPECT_EQ(parse({}).telemetryPath, "");
    const CliOptions opts =
        parse({"--telemetry", "/tmp/run.jsonl"});
    EXPECT_EQ(opts.telemetryPath, "/tmp/run.jsonl");
}

TEST(CliDeathTest, UnknownFlagRejected)
{
    EXPECT_EXIT(parse({"--checkpoints", "x"}),
                ::testing::ExitedWithCode(1), "unknown argument");
}

} // namespace
} // namespace pcmscrub

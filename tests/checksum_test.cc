/**
 * @file
 * Tests for the lightweight interleaved-parity detector.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/checksum.hh"

namespace pcmscrub {
namespace {

TEST(LightDetector, CleanDataMatches)
{
    const LightDetector det(512, 16);
    Random rng(1);
    for (int trial = 0; trial < 50; ++trial) {
        BitVector data(512);
        data.randomize(rng);
        const BitVector word = det.compute(data);
        EXPECT_EQ(word.size(), 16u);
        EXPECT_TRUE(det.matches(data, word));
    }
}

TEST(LightDetector, SingleErrorsAlwaysDetected)
{
    const LightDetector det(512, 8);
    Random rng(2);
    BitVector data(512);
    data.randomize(rng);
    const BitVector word = det.compute(data);
    for (std::size_t bit = 0; bit < data.size(); ++bit) {
        BitVector corrupted = data;
        corrupted.flip(bit);
        EXPECT_FALSE(det.matches(corrupted, word)) << "bit " << bit;
    }
}

TEST(LightDetector, OddErrorCountsAlwaysDetected)
{
    const LightDetector det(256, 16);
    Random rng(3);
    BitVector data(256);
    data.randomize(rng);
    const BitVector word = det.compute(data);
    for (int trial = 0; trial < 200; ++trial) {
        BitVector corrupted = data;
        std::set<std::size_t> bits;
        while (bits.size() < 5) {
            const std::size_t b = rng.uniformInt(256);
            if (bits.insert(b).second)
                corrupted.flip(b);
        }
        EXPECT_FALSE(det.matches(corrupted, word)) << "trial " << trial;
    }
    EXPECT_EQ(det.missProbability(5), 0.0);
}

TEST(LightDetector, TwoErrorsInSameClassAreMissed)
{
    const LightDetector det(64, 8);
    Random rng(4);
    BitVector data(64);
    data.randomize(rng);
    const BitVector word = det.compute(data);
    BitVector corrupted = data;
    corrupted.flip(3);
    corrupted.flip(3 + 8); // Same parity class (mod 8).
    EXPECT_TRUE(det.matches(corrupted, word));
    corrupted = data;
    corrupted.flip(3);
    corrupted.flip(4); // Different classes: detected.
    EXPECT_FALSE(det.matches(corrupted, word));
}

TEST(LightDetector, MissProbabilityMatchesEmpiricalRate)
{
    const unsigned s = 8;
    const LightDetector det(512, s);
    Random rng(5);
    BitVector data(512);
    data.randomize(rng);
    const BitVector word = det.compute(data);

    const unsigned errors = 4;
    int missed = 0;
    const int trials = 200000;
    for (int trial = 0; trial < trials; ++trial) {
        BitVector corrupted = data;
        std::set<std::size_t> bits;
        while (bits.size() < errors) {
            const std::size_t b = rng.uniformInt(512);
            if (bits.insert(b).second)
                corrupted.flip(b);
        }
        missed += det.matches(corrupted, word);
    }
    const double empirical = missed / static_cast<double>(trials);
    const double analytic = det.missProbability(errors);
    EXPECT_NEAR(empirical, analytic, analytic * 0.25 + 1e-4);
}

TEST(LightDetector, MissProbabilityBasics)
{
    const LightDetector det(512, 16);
    EXPECT_EQ(det.missProbability(0), 1.0);
    EXPECT_EQ(det.missProbability(1), 0.0);
    EXPECT_EQ(det.missProbability(3), 0.0);
    const double m2 = det.missProbability(2);
    // Two errors collide in the same class with probability 1/s.
    EXPECT_NEAR(m2, 1.0 / 16.0, 1e-12);
    EXPECT_GT(det.missProbability(4), 0.0);
    EXPECT_LT(det.missProbability(4), m2);
}

TEST(LightDetector, WiderDetectorMissesLess)
{
    const LightDetector narrow(512, 4);
    const LightDetector wide(512, 32);
    for (const unsigned e : {2u, 4u, 6u}) {
        EXPECT_LT(wide.missProbability(e), narrow.missProbability(e))
            << "e=" << e;
    }
}

TEST(CrcDetector, CleanDataMatchesAndIsDeterministic)
{
    const CrcDetector det(512, 16);
    EXPECT_EQ(det.name(), "CRC-16");
    EXPECT_EQ(det.storedBits(), 16u);
    Random rng(11);
    BitVector data(512);
    data.randomize(rng);
    const BitVector a = det.compute(data);
    const BitVector b = det.compute(data);
    EXPECT_EQ(a, b);
    EXPECT_TRUE(det.matches(data, a));
}

TEST(CrcDetector, EverySingleBitErrorDetected)
{
    for (const unsigned width : {8u, 16u, 32u}) {
        const CrcDetector det(256, width);
        Random rng(12);
        BitVector data(256);
        data.randomize(rng);
        const BitVector word = det.compute(data);
        for (std::size_t bit = 0; bit < 256; ++bit) {
            BitVector corrupted = data;
            corrupted.flip(bit);
            EXPECT_FALSE(det.matches(corrupted, word))
                << "width " << width << " bit " << bit;
        }
        EXPECT_EQ(det.missProbability(1), 0.0);
    }
}

TEST(CrcDetector, ShortBurstsDetected)
{
    // CRC-w catches all bursts shorter than w bits.
    const CrcDetector det(512, 16);
    Random rng(13);
    BitVector data(512);
    data.randomize(rng);
    const BitVector word = det.compute(data);
    for (int trial = 0; trial < 300; ++trial) {
        BitVector corrupted = data;
        const std::size_t start = rng.uniformInt(512 - 15);
        const unsigned len = 2 + static_cast<unsigned>(
            rng.uniformInt(14));
        for (unsigned i = 0; i < len; ++i)
            corrupted.flip(start + i);
        EXPECT_FALSE(det.matches(corrupted, word)) << trial;
    }
}

TEST(CrcDetector, RandomMultiErrorMissRateMatchesAnalytic)
{
    // CRC-8-ATM has an (x+1) factor: even-weight patterns alias at
    // 2^-7 within the even-parity subspace.
    const CrcDetector det(512, 8);
    Random rng(14);
    BitVector data(512);
    data.randomize(rng);
    const BitVector word = det.compute(data);
    int missed = 0;
    const int trials = 60000;
    for (int trial = 0; trial < trials; ++trial) {
        BitVector corrupted = data;
        for (int e = 0; e < 4; ++e)
            corrupted.flip(rng.uniformInt(512));
        missed += det.matches(corrupted, word);
    }
    const double empirical = missed / static_cast<double>(trials);
    EXPECT_NEAR(empirical, det.missProbability(4), 3e-3);
}

TEST(CrcDetector, BeatsParityOnMissFloor)
{
    const CrcDetector crc(512, 16);
    const LightDetector parity(512, 16, 2);
    for (const unsigned e : {2u, 4u, 8u})
        EXPECT_LT(crc.missProbability(e), parity.missProbability(e))
            << "e " << e;
}

TEST(DetectorFactory, BuildsBothFamilies)
{
    const auto parity = makeDetector(DetectorKind::InterleavedParity,
                                     512, 16, 2);
    EXPECT_EQ(parity->storedBits(), 16u);
    const auto crc = makeDetector(DetectorKind::Crc, 512, 32);
    EXPECT_EQ(crc->storedBits(), 32u);
    EXPECT_STREQ(detectorKindName(DetectorKind::Crc), "crc");
    EXPECT_STREQ(detectorKindName(DetectorKind::InterleavedParity),
                 "parity");
}

TEST(CrcDetectorDeath, UnsupportedWidthIsFatal)
{
    EXPECT_EXIT(CrcDetector(512, 12), ::testing::ExitedWithCode(1),
                "unsupported");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the traffic-recording backend decorator.
 */

#include <gtest/gtest.h>

#include "scrub/analytic_backend.hh"
#include "scrub/recording_backend.hh"
#include "scrub/sweep_scrub.hh"

namespace pcmscrub {
namespace {

constexpr Tick kHour = secondsToTicks(3600.0);
constexpr Tick kDay = secondsToTicks(86400.0);

AnalyticConfig
smallConfig()
{
    AnalyticConfig config;
    config.lines = 256;
    config.scheme = EccScheme::bch(8);
    config.demand.writesPerLinePerSecond = 0.0;
    config.demand.readsPerLinePerSecond = 0.0;
    config.seed = 3;
    return config;
}

TEST(RecordingBackend, DelegatesSemantics)
{
    AnalyticBackend inner(smallConfig());
    RecordingBackend recorder(inner);
    EXPECT_EQ(recorder.lineCount(), inner.lineCount());
    EXPECT_EQ(recorder.cellsPerLine(), inner.cellsPerLine());
    EXPECT_EQ(recorder.scheme().name(), inner.scheme().name());
    EXPECT_TRUE(recorder.eccCheckClean(0, secondsToTicks(1.0)));
    EXPECT_EQ(inner.metrics().eccChecks, 1u);
}

TEST(RecordingBackend, CapturesChecksAndRewrites)
{
    AnalyticBackend inner(smallConfig());
    RecordingBackend recorder(inner);
    StrongEccScrub policy(6 * kHour);
    runScrub(recorder, policy, 3 * kDay);

    const Trace &trace = recorder.trace();
    // One ScrubCheck per visited line, however many gates fired.
    EXPECT_EQ(trace.countOf(ReqType::ScrubCheck),
              inner.metrics().linesChecked);
    EXPECT_EQ(trace.countOf(ReqType::ScrubRewrite),
              inner.metrics().scrubRewrites);
    EXPECT_GT(inner.metrics().scrubRewrites, 0u);
}

TEST(RecordingBackend, OneCheckPerVisitDespiteMultipleGates)
{
    AnalyticBackend inner(smallConfig());
    RecordingBackend recorder(inner);
    const Tick at = secondsToTicks(10.0);
    // Light detect + syndrome + decode on the same (line, tick)
    // must record a single array access.
    recorder.lightDetectClean(5, at);
    recorder.eccCheckClean(5, at);
    recorder.fullDecode(5, at);
    EXPECT_EQ(recorder.trace().countOf(ReqType::ScrubCheck), 1u);
    // A different tick is a new access.
    recorder.eccCheckClean(5, at + 1);
    EXPECT_EQ(recorder.trace().countOf(ReqType::ScrubCheck), 2u);
}

TEST(RecordingBackend, TraceIsTimeOrdered)
{
    AnalyticBackend inner(smallConfig());
    RecordingBackend recorder(inner);
    BasicScrub policy(kHour);
    runScrub(recorder, policy, 12 * kHour);
    const Trace &trace = recorder.trace();
    ASSERT_GT(trace.size(), 0u);
    for (std::size_t i = 1; i < trace.size(); ++i)
        ASSERT_GE(trace[i].arrival, trace[i - 1].arrival) << i;
}

TEST(RecordingBackend, RepairsRecordAsRewrites)
{
    AnalyticConfig config = smallConfig();
    config.scheme = EccScheme::bch(1); // Guaranteed UEs at a month.
    AnalyticBackend inner(config);
    RecordingBackend recorder(inner);
    BasicScrub policy(30 * kDay);
    runScrub(recorder, policy, 30 * kDay);
    ASSERT_GT(inner.metrics().scrubUncorrectable, 0u);
    // Every repair and corrective rewrite appears as ScrubRewrite.
    EXPECT_GE(recorder.trace().countOf(ReqType::ScrubRewrite),
              inner.metrics().scrubUncorrectable);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for analytic ECC semantics, cross-checked against the real
 * codecs they model.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "scrub/ecc_scheme.hh"

namespace pcmscrub {
namespace {

TEST(EccScheme, NamesAndStrengths)
{
    EXPECT_EQ(EccScheme::secdedX8().name(), "8xSECDED");
    EXPECT_EQ(EccScheme::secdedX8().guaranteedT(), 1u);
    EXPECT_EQ(EccScheme::bch(8).name(), "BCH-8");
    EXPECT_EQ(EccScheme::bch(8).guaranteedT(), 8u);
}

TEST(EccScheme, CheckBitsMatchRealCodecs)
{
    // 8 x (72,64) adds 64 bits; BCH-t over GF(2^10) adds 10t.
    EXPECT_EQ(EccScheme::secdedX8().checkBits(), 64u);
    EXPECT_EQ(EccScheme::bch(1).checkBits(), 10u);
    EXPECT_EQ(EccScheme::bch(8).checkBits(), 80u);
}

TEST(EccScheme, BchUncorrectableIsDeterministicThreshold)
{
    const EccScheme scheme = EccScheme::bch(4);
    Random rng(1);
    for (unsigned e = 0; e <= 4; ++e) {
        EXPECT_FALSE(scheme.uncorrectable(e, rng)) << "e=" << e;
        EXPECT_EQ(scheme.uncorrectableProb(e), 0.0);
    }
    for (unsigned e = 5; e <= 12; ++e) {
        EXPECT_TRUE(scheme.uncorrectable(e, rng)) << "e=" << e;
        EXPECT_EQ(scheme.uncorrectableProb(e), 1.0);
    }
}

TEST(EccScheme, SecdedProbMatchesBirthdayFormula)
{
    const EccScheme scheme = EccScheme::secdedX8();
    EXPECT_EQ(scheme.uncorrectableProb(0), 0.0);
    EXPECT_EQ(scheme.uncorrectableProb(1), 0.0);
    // Two errors in distinct slices survive: 7/8.
    EXPECT_NEAR(scheme.uncorrectableProb(2), 1.0 / 8.0, 1e-12);
    // Three errors: survive with (7/8)(6/8).
    EXPECT_NEAR(scheme.uncorrectableProb(3),
                1.0 - (7.0 / 8.0) * (6.0 / 8.0), 1e-12);
    // Pigeonhole beyond 8.
    EXPECT_EQ(scheme.uncorrectableProb(9), 1.0);
}

TEST(EccScheme, SecdedSamplingMatchesProb)
{
    const EccScheme scheme = EccScheme::secdedX8();
    Random rng(7);
    for (const unsigned errors : {2u, 3u, 5u}) {
        int failures = 0;
        const int trials = 100000;
        for (int i = 0; i < trials; ++i)
            failures += scheme.uncorrectable(errors, rng);
        const double empirical = failures / static_cast<double>(trials);
        EXPECT_NEAR(empirical, scheme.uncorrectableProb(errors), 0.01)
            << "errors=" << errors;
    }
}

TEST(EccScheme, ProbMonotoneInErrors)
{
    const EccScheme scheme = EccScheme::secdedX8();
    double prev = 0.0;
    for (unsigned e = 0; e <= 10; ++e) {
        const double p = scheme.uncorrectableProb(e);
        EXPECT_GE(p, prev) << "e=" << e;
        prev = p;
    }
}

TEST(EccScheme, EnergyModelHooks)
{
    const DeviceConfig config;
    const EccScheme secded = EccScheme::secdedX8();
    const EccScheme bch = EccScheme::bch(8);
    EXPECT_FALSE(secded.hasCheapCheck());
    EXPECT_TRUE(bch.hasCheapCheck());
    EXPECT_EQ(secded.checkEnergy(config), secded.fullDecodeEnergy(config));
    EXPECT_LT(bch.checkEnergy(config), bch.fullDecodeEnergy(config));
}

} // namespace
} // namespace pcmscrub

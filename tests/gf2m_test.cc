/**
 * @file
 * Field-axiom and known-value tests for GF(2^m).
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "gf/gf2m.hh"

namespace pcmscrub {
namespace {

TEST(GF2m, OrderAndSize)
{
    const GF2m f(4);
    EXPECT_EQ(f.m(), 4u);
    EXPECT_EQ(f.order(), 15u);
    EXPECT_EQ(f.size(), 16u);
    EXPECT_EQ(f.primitivePoly(), 0x13u);
}

TEST(GF2m, AlphaPowersForGF16)
{
    // GF(16) with x^4 + x + 1: alpha^4 = alpha + 1 = 0b0011.
    const GF2m f(4);
    EXPECT_EQ(f.alphaPow(0), 1u);
    EXPECT_EQ(f.alphaPow(1), 2u);
    EXPECT_EQ(f.alphaPow(4), 3u);
    EXPECT_EQ(f.alphaPow(15), 1u); // Full cycle.
}

TEST(GF2m, LogIsInverseOfAlphaPow)
{
    const GF2m f(8);
    for (std::uint32_t e = 0; e < f.order(); ++e)
        EXPECT_EQ(f.log(f.alphaPow(e)), e);
}

TEST(GF2m, MultiplicationAgainstKnownGF16Table)
{
    const GF2m f(4);
    // 0b0110 * 0b0111 in GF(16)/(x^4+x+1):
    // (x^2+x)(x^2+x+1) = x^4+x = (x+1)+x = 1.
    EXPECT_EQ(f.mul(0x6, 0x7), 0x1u);
    EXPECT_EQ(f.mul(0x0, 0x9), 0x0u);
    EXPECT_EQ(f.mul(0x1, 0x9), 0x9u);
}

TEST(GF2m, FieldAxiomsHoldOnRandomElements)
{
    const GF2m f(10);
    Random rng(3);
    for (int i = 0; i < 2000; ++i) {
        const GfElem a = static_cast<GfElem>(rng.uniformInt(f.size()));
        const GfElem b = static_cast<GfElem>(rng.uniformInt(f.size()));
        const GfElem c = static_cast<GfElem>(rng.uniformInt(f.size()));
        // Commutativity and associativity of mul.
        EXPECT_EQ(f.mul(a, b), f.mul(b, a));
        EXPECT_EQ(f.mul(f.mul(a, b), c), f.mul(a, f.mul(b, c)));
        // Distributivity over xor-addition.
        EXPECT_EQ(f.mul(a, GF2m::add(b, c)),
                  GF2m::add(f.mul(a, b), f.mul(a, c)));
    }
}

TEST(GF2m, InverseAndDivision)
{
    const GF2m f(6);
    for (GfElem a = 1; a <= f.order(); ++a) {
        EXPECT_EQ(f.mul(a, f.inv(a)), 1u) << "a=" << a;
        EXPECT_EQ(f.div(a, a), 1u);
        EXPECT_EQ(f.div(0, a), 0u);
    }
}

TEST(GF2m, PowMatchesRepeatedMultiplication)
{
    const GF2m f(5);
    for (GfElem a = 1; a <= f.order(); ++a) {
        GfElem acc = 1;
        for (unsigned e = 0; e < 10; ++e) {
            EXPECT_EQ(f.pow(a, e), acc) << "a=" << a << " e=" << e;
            acc = f.mul(acc, a);
        }
    }
    EXPECT_EQ(f.pow(0, 0), 1u);
    EXPECT_EQ(f.pow(0, 3), 0u);
}

TEST(GF2m, PowHandlesHugeExponents)
{
    const GF2m f(10);
    const GfElem a = f.alphaPow(7);
    // a^(order) == 1, so a^(k*order + r) == a^r.
    const std::uint64_t huge =
        static_cast<std::uint64_t>(f.order()) * 1'000'000ULL + 5;
    EXPECT_EQ(f.pow(a, huge), f.pow(a, 5));
}

TEST(GF2m, AllSupportedDegreesConstruct)
{
    for (unsigned m = 2; m <= 14; ++m) {
        const GF2m f(m);
        EXPECT_EQ(f.order(), (1u << m) - 1);
        // Primitivity is asserted inside the constructor; touching
        // a few products exercises the tables.
        EXPECT_EQ(f.mul(f.alphaPow(1), f.alphaPow(f.order() - 1)), 1u);
    }
}

TEST(GF2mDeath, RejectsUnsupportedDegree)
{
    EXPECT_EXIT(GF2m(1), ::testing::ExitedWithCode(1), "supported");
    EXPECT_EXIT(GF2m(15), ::testing::ExitedWithCode(1), "supported");
}

TEST(GF2mDeath, DivisionByZeroPanics)
{
    const GF2m f(4);
    EXPECT_DEATH(f.div(3, 0), "division by zero");
    EXPECT_DEATH(f.inv(0), "inverse of zero");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Closed-form band-crossing math (CellModel::cleanUntil) versus a
 * brute-force search over the actual read function. The lazy-drift
 * fast path is only sound if cleanUntil never overshoots the true
 * crossing; it is only useful if it lands close below it.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "pcm/cell.hh"

namespace pcmscrub {
namespace {

/**
 * True last clean tick by doubling out from the write tick and
 * binary-searching the (monotone) read function; kNeverTick when no
 * crossing exists within the representable tick range.
 */
Tick
bruteCleanUntil(const CellModel &model, const Cell &cell)
{
    const unsigned level = model.read(cell, cell.writeTick);
    Tick lo = cell.writeTick; // Reads `level` here by construction.
    Tick hi = 0;
    bool found = false;
    for (unsigned k = 0; k < 64; ++k) {
        const Tick step = Tick{1} << k;
        if (step >= kNeverTick - cell.writeTick)
            break;
        const Tick probe = cell.writeTick + step;
        if (model.read(cell, probe) != level) {
            hi = probe;
            found = true;
            break;
        }
        lo = probe;
    }
    if (!found)
        return kNeverTick;
    while (hi - lo > 1) {
        const Tick mid = lo + (hi - lo) / 2;
        if (model.read(cell, mid) == level)
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

TEST(DriftCrossing, ClosedFormNeverOvershootsAndLandsClose)
{
    const DeviceConfig device;
    const CellModel model(device);
    Random rng(42);
    unsigned finite = 0;
    for (unsigned trial = 0; trial < 400; ++trial) {
        Cell cell;
        model.initialize(cell, rng);
        const unsigned level = trial % mlcLevels;
        const Tick writeTick =
            secondsToTicks(rng.uniform(0.0, 1.0e6));
        model.program(cell, level, writeTick, rng);
        if (cell.stuck)
            continue;

        const Tick closed = model.cleanUntil(cell);
        const Tick brute = bruteCleanUntil(model, cell);

        // Soundness: the claim never extends past the true crossing.
        ASSERT_LE(closed, brute)
            << "level " << level << " nu " << cell.nu
            << " logR0 " << cell.logR0;
        ASSERT_GE(closed, writeTick);

        // Every tick of the claimed interval reads the write-time
        // level (spot-check the interval; monotonicity covers the
        // rest).
        if (closed != kNeverTick) {
            const unsigned atWrite = model.read(cell, writeTick);
            EXPECT_EQ(model.read(cell, closed), atWrite);
            EXPECT_EQ(model.read(cell, writeTick + (closed - writeTick) / 2),
                      atWrite);
        }

        // Tightness: the conversion slack is ~2^-45 relative, so a
        // 2^-40-relative bound leaves a 32x margin and still proves
        // the claim is not uselessly conservative.
        if (brute != kNeverTick) {
            ++finite;
            const Tick gap = brute - closed;
            EXPECT_LE(gap, 16 + ((brute - writeTick) >> 40))
                << "closed " << closed << " brute " << brute;
        }
    }
    // The default device config must exercise real crossings or this
    // test proves nothing.
    EXPECT_GT(finite, 50u);
}

TEST(DriftCrossing, StuckTopBandAndZeroDriftNeverCross)
{
    const DeviceConfig device;
    const CellModel model(device);
    Random rng(7);

    Cell stuck;
    model.initialize(stuck, rng);
    model.program(stuck, 1, 100, rng);
    stuck.stuck = true;
    stuck.stuckLevel = 1;
    EXPECT_EQ(model.cleanUntil(stuck), kNeverTick);

    // Top band: drift only raises resistance and there is no
    // threshold above.
    Cell top;
    model.initialize(top, rng);
    model.program(top, mlcLevels - 1, 100, rng);
    ASSERT_FALSE(top.stuck);
    EXPECT_EQ(model.cleanUntil(top), kNeverTick);

    Cell still;
    model.initialize(still, rng);
    model.program(still, 1, 100, rng);
    ASSERT_FALSE(still.stuck);
    still.nu = 0.0f;
    EXPECT_EQ(model.cleanUntil(still), kNeverTick);

    // Reverse drift is outside the model's monotonicity argument:
    // the claim must collapse to the write tick itself.
    Cell reverse = still;
    reverse.nu = -0.01f;
    EXPECT_EQ(model.cleanUntil(reverse), reverse.writeTick);
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Tests for the discrete-event kernel.
 */

#include <vector>

#include <gtest/gtest.h>

#include "sim/event_queue.hh"

namespace pcmscrub {
namespace {

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    queue.schedule(30, [&] { order.push_back(3); });
    queue.schedule(10, [&] { order.push_back(1); });
    queue.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(queue.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue queue;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        queue.schedule(7, [&order, i] { order.push_back(i); });
    queue.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksCanScheduleMoreEvents)
{
    EventQueue queue;
    int fired = 0;
    std::function<void()> chain = [&] {
        ++fired;
        if (fired < 4)
            queue.scheduleIn(10, chain);
    };
    queue.schedule(0, chain);
    EXPECT_EQ(queue.run(), 4u);
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(10, [&] { ++fired; });
    queue.schedule(20, [&] { ++fired; });
    queue.schedule(30, [&] { ++fired; });
    EXPECT_EQ(queue.run(20), 2u);
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(queue.pending(), 1u);
    // Time advances to the limit when no event ran past it.
    EXPECT_EQ(queue.run(25), 0u);
    EXPECT_EQ(queue.now(), 25u);
    EXPECT_EQ(queue.run(), 1u);
    EXPECT_EQ(fired, 3);
}

TEST(EventQueue, ClearDropsPending)
{
    EventQueue queue;
    int fired = 0;
    queue.schedule(5, [&] { ++fired; });
    queue.clear();
    EXPECT_EQ(queue.pending(), 0u);
    EXPECT_EQ(queue.run(), 0u);
    EXPECT_EQ(fired, 0);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue queue;
    queue.schedule(100, [] {});
    queue.run();
    EXPECT_DEATH(queue.schedule(50, [] {}), "into the past");
}

TEST(EventQueueDeath, NullCallbackPanics)
{
    EventQueue queue;
    EXPECT_DEATH(queue.schedule(1, nullptr), "null event callback");
}

} // namespace
} // namespace pcmscrub

/**
 * @file
 * Property/fuzz tests for the BCH codec, the correctness anchor the
 * whole strong-ECC scrub argument rests on.
 *
 * Seeded randomized sweep, two properties:
 *
 *  - Round trip: any 0..t injected errors decode back to the exact
 *    transmitted codeword, with correctedBits equal to the injected
 *    count.
 *  - No silent miscorrection: on the paper's headline code (BCH-8,
 *    d >= 17), t+1..t+3 injected errors must never come back as a
 *    "Corrected" word whose payload differs from the original — a
 *    random pattern landing within distance t of *another* codeword
 *    needs >= t+1 of its flips aligned with a minimum-weight
 *    codeword, which at this distance is ~1e-7 per trial. Weaker
 *    codes legitimately miscorrect beyond t with appreciable
 *    probability (the simulator models exactly that as
 *    `miscorrections` — e.g. two errors on a t=1 code routinely
 *    decode to a wrong word), so for them the suite only checks the
 *    decoder's honesty invariants: a corrupted word is never called
 *    Clean, and every Corrected verdict yields a valid codeword.
 *
 * The suite is part of the sanitizer CI leg (PCMSCRUB_SANITIZE=ON),
 * so every randomized decode also runs under ASan/UBSan.
 */

#include <set>

#include <gtest/gtest.h>

#include "common/random.hh"
#include "ecc/bch.hh"

namespace pcmscrub {
namespace {

/** Flip `count` distinct random bits of the codeword. */
void
injectErrors(BitVector &cw, unsigned count, Random &rng)
{
    std::set<std::size_t> positions;
    while (positions.size() < count) {
        const std::size_t bit = rng.uniformInt(cw.size());
        if (positions.insert(bit).second)
            cw.flip(bit);
    }
}

struct CodeShape
{
    std::size_t dataBits;
    unsigned t;
};

/** The shapes the simulator actually instantiates. */
const CodeShape kShapes[] = {
    {512, 1}, {512, 2}, {512, 4}, {512, 8}, {128, 4}, {64, 2},
};

TEST(BchFuzz, UpToTErrorsRoundTripExactly)
{
    Random rng(20260806);
    for (const CodeShape &shape : kShapes) {
        const BchCode code(shape.dataBits, shape.t);
        SCOPED_TRACE(code.name());
        for (int trial = 0; trial < 60; ++trial) {
            BitVector data(shape.dataBits);
            data.randomize(rng);
            const BitVector clean = code.encode(data);
            for (unsigned errors = 0; errors <= shape.t; ++errors) {
                BitVector cw = clean;
                injectErrors(cw, errors, rng);
                const DecodeResult res = code.decode(cw);
                ASSERT_EQ(cw, clean)
                    << errors << " errors, trial " << trial;
                EXPECT_EQ(res.correctedBits, errors);
                EXPECT_EQ(res.status, errors == 0
                                          ? DecodeStatus::Clean
                                          : DecodeStatus::Corrected);
                EXPECT_TRUE(code.check(cw));
                EXPECT_EQ(code.extractData(cw), data);
            }
        }
    }
}

TEST(BchFuzz, BeyondTErrorsNeverSilentlyMiscorrectOnStrongCodes)
{
    Random rng(77005);
    for (const CodeShape &shape : kShapes) {
        if (shape.t < 8)
            continue;
        const BchCode code(shape.dataBits, shape.t);
        SCOPED_TRACE(code.name());
        for (int trial = 0; trial < 60; ++trial) {
            BitVector data(shape.dataBits);
            data.randomize(rng);
            const BitVector clean = code.encode(data);
            for (unsigned extra = 1; extra <= 3; ++extra) {
                BitVector cw = clean;
                injectErrors(cw, shape.t + extra, rng);
                const DecodeResult res = code.decode(cw);
                EXPECT_NE(res.status, DecodeStatus::Clean);
                // The dangerous outcome: claiming success while
                // delivering the wrong payload.
                if (res.status == DecodeStatus::Corrected) {
                    EXPECT_TRUE(code.check(cw));
                    EXPECT_EQ(code.extractData(cw), data)
                        << "silent miscorrection at t+" << extra
                        << ", trial " << trial;
                }
            }
        }
    }
}

TEST(BchFuzz, DecoderStaysHonestOnWeakCodesBeyondT)
{
    // Codes below BCH-8 *do* miscorrect beyond t (that is physics
    // the simulator models); the decoder must still never call a
    // corrupted word Clean, and anything it "corrects" must be a
    // valid codeword.
    Random rng(90210);
    for (const CodeShape &shape : kShapes) {
        if (shape.t >= 8)
            continue;
        const BchCode code(shape.dataBits, shape.t);
        SCOPED_TRACE(code.name());
        for (int trial = 0; trial < 60; ++trial) {
            BitVector data(shape.dataBits);
            data.randomize(rng);
            const BitVector clean = code.encode(data);
            for (unsigned extra = 1; extra <= 3; ++extra) {
                BitVector cw = clean;
                injectErrors(cw, shape.t + extra, rng);
                const DecodeResult res = code.decode(cw);
                // "Clean" is only consistent when the corrupted word
                // happens to be a valid codeword (the error pattern
                // itself had codeword weight) — verifiable either way.
                if (res.status == DecodeStatus::Clean ||
                    res.status == DecodeStatus::Corrected)
                    EXPECT_TRUE(code.check(cw));
            }
        }
    }
}

TEST(BchFuzz, UncorrectableVerdictLeavesPayloadRecoverableByRetry)
{
    // The degradation ladder re-reads after an Uncorrectable
    // verdict; the decoder must not have scrambled the word it
    // failed on beyond the errors it was handed. (Decoding is
    // allowed to flip bits only when it claims Corrected.)
    Random rng(31337);
    const BchCode code(512, 4);
    for (int trial = 0; trial < 200; ++trial) {
        BitVector data(512);
        data.randomize(rng);
        const BitVector clean = code.encode(data);
        BitVector cw = clean;
        injectErrors(cw, 4 + 1 + trial % 3, rng);
        const BitVector asHanded = cw;
        const DecodeResult res = code.decode(cw);
        if (res.status == DecodeStatus::Uncorrectable)
            EXPECT_EQ(cw, asHanded);
    }
}

} // namespace
} // namespace pcmscrub

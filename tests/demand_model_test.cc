/**
 * @file
 * Tests for per-line demand-rate mapping.
 */

#include <gtest/gtest.h>

#include "scrub/demand_model.hh"

namespace pcmscrub {
namespace {

TEST(DemandModel, UniformGivesEveryLineTheAverage)
{
    DemandConfig config;
    config.writesPerLinePerSecond = 2e-4;
    config.readsPerLinePerSecond = 3e-3;
    const DemandModel model(config, 1000);
    for (const LineIndex line : {0ul, 17ul, 999ul}) {
        EXPECT_DOUBLE_EQ(model.writeRate(line), 2e-4);
        EXPECT_DOUBLE_EQ(model.readRate(line), 3e-3);
    }
}

TEST(DemandModel, ZipfRatesDecreaseWithRankAndAverageOut)
{
    DemandConfig config;
    config.kind = WorkloadKind::Zipf;
    config.writesPerLinePerSecond = 1e-4;
    config.zipfTheta = 0.9;
    const std::uint64_t n = 5000;
    const DemandModel model(config, n);
    EXPECT_GT(model.writeRate(0), model.writeRate(10));
    EXPECT_GT(model.writeRate(10), model.writeRate(1000));
    double total = 0.0;
    for (LineIndex line = 0; line < n; ++line)
        total += model.writeRate(line);
    EXPECT_NEAR(total / n, 1e-4, 1e-7);
}

TEST(DemandModel, WriteBurstHasTwoClassesAveragingOut)
{
    DemandConfig config;
    config.kind = WorkloadKind::WriteBurst;
    config.writesPerLinePerSecond = 1e-4;
    config.hotFraction = 0.1;
    config.hotMultiplier = 10.0;
    const std::uint64_t n = 20000;
    const DemandModel model(config, n);
    double total = 0.0;
    std::uint64_t hot = 0;
    double hotRate = 0.0;
    double coldRate = 1e9;
    for (LineIndex line = 0; line < n; ++line) {
        const double rate = model.writeRate(line);
        total += rate;
        hotRate = std::max(hotRate, rate);
        coldRate = std::min(coldRate, rate);
        hot += rate > 1e-4;
    }
    EXPECT_NEAR(total / n, 1e-4, 2e-6);
    EXPECT_NEAR(hotRate / coldRate, 10.0, 1e-6);
    EXPECT_NEAR(hot / static_cast<double>(n), 0.1, 0.02);
}

TEST(DemandModel, StreamingPoissonisesToUniform)
{
    DemandConfig config;
    config.kind = WorkloadKind::Streaming;
    config.writesPerLinePerSecond = 5e-5;
    const DemandModel model(config, 100);
    EXPECT_DOUBLE_EQ(model.writeRate(0), 5e-5);
    EXPECT_DOUBLE_EQ(model.writeRate(99), 5e-5);
}

TEST(DemandModelDeath, InvalidConfigIsFatal)
{
    DemandConfig config;
    config.writesPerLinePerSecond = -1.0;
    EXPECT_EXIT(DemandModel(config, 10), ::testing::ExitedWithCode(1),
                "non-negative");
    DemandConfig burst;
    burst.kind = WorkloadKind::WriteBurst;
    burst.hotFraction = 0.0;
    EXPECT_EXIT(DemandModel(burst, 10), ::testing::ExitedWithCode(1),
                "hotFraction");
}

} // namespace
} // namespace pcmscrub
